/**
 * @file
 * Session-based simulation engine: whole-campaign simulation as a
 * first-class operation.
 *
 * A SimulationJob names an accelerator (registry name + params) and a
 * workload; the engine executes batches of jobs across a std::thread
 * pool and memoizes per-(accelerator config, workload, options)
 * results. Jobs sharing a (workload, options) pair are grouped so each
 * layer's spike matrix is generated once for the whole lineup. Because
 * every job builds its own accelerator through the AcceleratorRegistry
 * and the layer API returns results by value, jobs share no mutable
 * state — results are bitwise identical whatever the thread count, and
 * batch order in equals result order out.
 *
 * The Fig. 8 / Fig. 9 / Table IV benches and the CLI are thin loops
 * over this engine.
 */

#ifndef PROSPERITY_ANALYSIS_ENGINE_H
#define PROSPERITY_ANALYSIS_ENGINE_H

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/runner.h"
#include "arch/registry.h"
#include "obs/trace.h"
#include "snn/workload.h"
#include "util/thread_annotations.h"

namespace prosperity {

/** A design point: registry name plus factory parameters. */
struct AcceleratorSpec
{
    std::string name;          ///< AcceleratorRegistry name
    AcceleratorParams params;  ///< per-design knobs (may be empty)

    AcceleratorSpec() = default;
    explicit AcceleratorSpec(std::string n) : name(std::move(n)) {}
    AcceleratorSpec(std::string n, AcceleratorParams p)
        : name(std::move(n)), params(std::move(p))
    {
    }
};

/** Same design point: name and parameters match verbatim. */
bool operator==(const AcceleratorSpec& a, const AcceleratorSpec& b);
inline bool operator!=(const AcceleratorSpec& a, const AcceleratorSpec& b)
{
    return !(a == b);
}

/** One unit of simulation work: a design point on a workload. */
struct SimulationJob
{
    AcceleratorSpec accelerator;
    Workload workload;
    RunOptions options;
};

/** Engine configuration. */
struct EngineOptions
{
    /** Worker threads for batch runs; 0 = hardware concurrency. */
    std::size_t threads = 0;

    /** Cache results keyed by (accelerator spec, workload, options). */
    bool memoize = true;
};

/**
 * Pluggable second-level result cache behind the in-memory memo cache
 * (implemented by serve::ResultStore for on-disk persistence). The
 * engine consults it only after a memory miss and publishes every
 * freshly simulated result to it. Implementations must be thread-safe:
 * the engine calls from its worker threads concurrently. fetch() must
 * treat any unreadable entry as a miss — a second-level cache failure
 * must degrade to recomputation, never to an engine error.
 */
/**
 * Defect counters of a second-level ResultCache: entries it declined
 * to trust, by failure class. All three are misses from the engine's
 * point of view; the split exists so operators can tell "disk is
 * rotting" (corrupt), "a writer died mid-publish or the file was cut
 * short" (truncated) and "the store was written by another schema
 * rev" (version_mismatch) apart.
 */
struct ResultCacheHealth
{
    std::size_t corrupt = 0;   ///< parsed/validated wrong (not truncation)
    std::size_t truncated = 0; ///< entry text cut short (no closing brace)
    std::size_t version_mismatch = 0; ///< schema_version != current
};

class ResultCache
{
  public:
    virtual ~ResultCache() = default;

    /** Look up `key`; on a hit write the result to `*out` and return
     *  true. */
    virtual bool fetch(const std::string& key, RunResult* out) = 0;

    /** Persist a freshly computed result under `key`. */
    virtual void publish(const std::string& key,
                         const RunResult& result) = 0;

    /** Defect counters since construction; default: a cache with no
     *  failure classes to report. Thread-safe like fetch/publish. */
    virtual ResultCacheHealth health() const { return {}; }
};

/** Memoization counters, a snapshot of SimulationEngine::stats(). */
struct EngineStats
{
    /** Results currently held in the in-memory cache. */
    std::size_t entries = 0;

    /** Jobs served without running a simulation: from the memory
     *  cache, or from the second-level ResultCache. */
    std::size_t hits = 0;

    /** Simulations actually executed (every one implies a miss in
     *  both cache levels). */
    std::size_t misses = 0;

    /** submit() calls that piggybacked on an in-flight computation of
     *  the same key instead of enqueueing their own. */
    std::size_t in_flight_dedups = 0;

    /** Second-level ResultCache defect counters (all zero when no
     *  second level is installed); see ResultCacheHealth. */
    std::size_t store_corrupt = 0;
    std::size_t store_truncated = 0;
    std::size_t store_version_mismatch = 0;
};

/**
 * Executes batches of simulation jobs in parallel with deterministic
 * result ordering and cross-batch memoization. Thread-safe: a single
 * engine may be shared, and its cache persists across runBatch calls.
 *
 * @par Memoization key
 * Results are cached under the canonical string
 * `canonical accelerator name {params fingerprint} | workload name |
 * activation-profile fields | run options (seed, keep_layer_records)`
 * (see jobKey). Two jobs are "the
 * same simulation" exactly when those components match; anything not
 * in the key (thread count, batch composition, submission order) must
 * not — and does not — affect the result.
 *
 * @par Thread-count independence
 * Every job constructs its own Accelerator through the registry and
 * spike generation draws from per-(seed, layer) streams, so no mutable
 * state is shared between workers. runBatch(jobs) therefore returns
 * bitwise-identical results for any EngineOptions::threads value,
 * including 1 — pinned by tests/test_engine.cc.
 */
class SimulationEngine
{
  public:
    explicit SimulationEngine(EngineOptions options = {});

    /**
     * Joins the async worker pool. Tasks already submitted are
     * finished first (their futures stay valid); destroying the
     * engine never breaks an outstanding promise.
     */
    ~SimulationEngine();

    SimulationEngine(const SimulationEngine&) = delete;
    SimulationEngine& operator=(const SimulationEngine&) = delete;

    /** Run a single job (memoized like any batch member). */
    RunResult run(const SimulationJob& job);

    /**
     * Asynchronous submission: enqueue `job` on the engine's
     * persistent worker pool (EngineOptions::threads workers, started
     * lazily) and return a future for its result.
     *
     * The async path shares the runBatch cache: a submit whose key is
     * already cached returns an immediately-ready future and counts as
     * a cache hit, a submit whose key is currently being computed by
     * an earlier submit piggybacks on that computation (simulated
     * once, not counted as a hit — same rule as duplicate jobs inside
     * one batch), and freshly computed results are published for later
     * run/runBatch/submit calls. Results are bitwise identical to
     * runBatch of the same job (pinned in tests/test_engine.cc).
     *
     * Errors — unknown accelerator names, bad parameters — surface
     * from future::get(), not from submit() itself.
     */
    std::future<RunResult> submit(const SimulationJob& job);

    /**
     * Run all jobs, using up to EngineOptions::threads workers.
     * results[i] always corresponds to jobs[i]; duplicate jobs are
     * simulated once. Throws std::invalid_argument before starting any
     * work if a job names an unregistered accelerator.
     */
    std::vector<RunResult> runBatch(const std::vector<SimulationJob>& jobs);

    /**
     * Cross-product convenience: returns one row per workload, one
     * column per accelerator spec, all simulated as a single batch.
     */
    std::vector<std::vector<RunResult>> runGrid(
        const std::vector<AcceleratorSpec>& accelerators,
        const std::vector<Workload>& workloads,
        const RunOptions& options = {});

    /** Number of memoized results currently held. */
    std::size_t cacheSize() const;

    /** Jobs served from the cache since construction. */
    std::size_t cacheHits() const;

    /** All memoization counters in one consistent snapshot. */
    EngineStats stats() const;

    /** Configured worker-pool size (resolved, never 0). */
    std::size_t threads() const { return options_.threads; }

    /** Async tasks enqueued but not yet claimed by a worker. */
    std::size_t queueDepth() const;

    /**
     * Install (or clear, with nullptr) the second-level result cache.
     * Takes effect for subsequent run/runBatch/submit calls; typically
     * set once right after construction. The engine shares ownership,
     * so the backing store outlives any in-flight workers.
     */
    void setResultCache(std::shared_ptr<ResultCache> cache);

    void clearCache();

    /**
     * Canonical memoization key of a job (see the class comment).
     * Public so campaign-level code can deduplicate jobs under exactly
     * the engine's notion of "the same simulation".
     */
    static std::string jobKey(const SimulationJob& job);

  private:
    /** One queued submit(): the job, its key, and the caller's promise. */
    struct AsyncTask
    {
        SimulationJob job;
        std::string key;
        std::promise<RunResult> promise;
        /** obs::monotonicNanos() at enqueue; feeds the queue-wait
         *  histogram and nothing else (results never depend on it). */
        std::uint64_t enqueued_ns = 0;
        /** Submitter's trace context, re-installed on the worker so
         *  queue/simulate/store spans join the caller's trace. */
        obs::TraceContext trace_context;
    };

    /** Start the worker pool if needed. */
    void ensureWorkersLocked() REQUIRES(mutex_);
    void workerLoop() EXCLUDES(mutex_);

    EngineOptions options_;
    mutable util::Mutex mutex_;
    std::map<std::string, RunResult> cache_ GUARDED_BY(mutex_);
    std::size_t cache_hits_ GUARDED_BY(mutex_) = 0;
    std::size_t cache_misses_ GUARDED_BY(mutex_) = 0;
    std::size_t inflight_dedups_ GUARDED_BY(mutex_) = 0;
    std::shared_ptr<ResultCache> second_level_ GUARDED_BY(mutex_);

    // Async submission state.
    std::deque<AsyncTask> queue_ GUARDED_BY(mutex_);
    /** Keys being computed by a worker -> promises of piggybacked
     *  submits waiting for that computation. */
    std::map<std::string, std::vector<std::promise<RunResult>>>
        inflight_ GUARDED_BY(mutex_);
    std::vector<std::thread> workers_ GUARDED_BY(mutex_);
    util::CondVar queue_cv_;
    bool stopping_ GUARDED_BY(mutex_) = false;
};

} // namespace prosperity

#endif // PROSPERITY_ANALYSIS_ENGINE_H
