/**
 * @file
 * Workload runner: drives an Accelerator through every layer of a
 * (model, dataset) workload with calibrated synthetic activations, and
 * aggregates latency / energy / throughput — the machinery behind
 * Table IV, Fig. 8 and Fig. 9.
 */

#ifndef PROSPERITY_ANALYSIS_RUNNER_H
#define PROSPERITY_ANALYSIS_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accelerator.h"
#include "snn/workload.h"

namespace prosperity {

/** Per-layer record for inspection. */
struct LayerRunRecord
{
    std::string layer_name;
    double cycles = 0.0;
    double dense_macs = 0.0;
};

/** End-to-end result of one workload on one accelerator. */
struct RunResult
{
    std::string accelerator;
    std::string workload;

    double cycles = 0.0;
    double dense_macs = 0.0; ///< MACs of all GeMM layers (dense count)
    double dram_bytes = 0.0; ///< total off-chip traffic (0 for the GPU)
    EnergyModel energy;
    Tech tech;

    std::vector<LayerRunRecord> layers;

    /** Wall-clock seconds at the design's frequency. */
    double seconds() const { return tech.secondsFor(cycles); }

    /** Dense-equivalent throughput in GOP/s (Table IV). One OP is one
     *  accumulate position of the dense GeMM — the paper's convention,
     *  under which Eyeriss's 168 MACs at 35% utilization produce its
     *  reported 29.4 GOP/s. */
    double gops() const
    {
        const double s = seconds();
        return s > 0.0 ? dense_macs / s / 1e9 : 0.0;
    }

    /** Energy efficiency, GOP/J (Table IV, same OP convention). */
    double gopj() const
    {
        const double joules = energy.totalPj() * 1e-12;
        return joules > 0.0 ? dense_macs / joules / 1e9 : 0.0;
    }

    /** Average power in watts over the run. */
    double averagePowerW() const
    {
        return energy.averagePowerW(cycles, tech);
    }
};

/** Runner options. */
struct RunOptions
{
    std::uint64_t seed = 7;
    bool keep_layer_records = false;
};

inline bool
operator==(const RunOptions& a, const RunOptions& b)
{
    return a.seed == b.seed &&
           a.keep_layer_records == b.keep_layer_records;
}
inline bool
operator!=(const RunOptions& a, const RunOptions& b)
{
    return !(a == b);
}

/**
 * Build the LayerRequest a workload layer maps to. `spikes` must be the
 * layer's generated spike matrix for spiking-GeMM layers (it may be
 * null for dense/SFU layers) and must outlive the returned request.
 */
LayerRequest layerRequestFor(const LayerSpec& layer,
                             const BitMatrix* spikes);

/** Run one workload end to end on `accel`. */
RunResult runWorkload(Accelerator& accel, const Workload& workload,
                      const RunOptions& options = {});

/**
 * Run one workload on several accelerators, generating each layer's
 * spike matrix once and feeding it to all of them — identical results
 * to per-accelerator runWorkload calls, much less generation time.
 */
std::vector<RunResult> runWorkloadOnAll(
    const std::vector<Accelerator*>& accels, const Workload& workload,
    const RunOptions& options = {});

/**
 * Dataset-style averaging: run `samples` independent activation draws
 * (seeds options.seed, options.seed+1, ...) and return the mean-cycles
 * result with merged energy (scaled back to one inference), plus the
 * relative spread. Mirrors the paper's methodology of averaging the
 * A100/end-to-end measurements over the whole dataset.
 */
struct AveragedRunResult
{
    RunResult mean;              ///< cycles/energy averaged per sample
    double cycles_rel_spread = 0.0; ///< (max - min) / mean cycles
};
AveragedRunResult runWorkloadAveraged(Accelerator& accel,
                                      const Workload& workload,
                                      std::size_t samples,
                                      const RunOptions& options = {});

/** Geometric mean helper for the Fig. 8 summary columns. */
double geometricMean(const std::vector<double>& values);

} // namespace prosperity

#endif // PROSPERITY_ANALYSIS_RUNNER_H
