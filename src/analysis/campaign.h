/**
 * @file
 * Declarative experiment campaigns: an experiment is *data*, not a
 * hand-written main().
 *
 * A CampaignSpec names sweep axes — accelerator design points,
 * workloads, run options — and how to combine them (cross product or
 * zip). It expands deterministically into duplicate-free
 * SimulationJobs, loads from / saves to JSON (campaigns/<name>.json), and
 * compares equal after a serialize/parse round trip. A CampaignRunner
 * executes a spec through SimulationEngine::submit so long campaigns
 * stream per-job progress, and produces a CampaignReport: every cell's
 * RunResult plus derived speedup / energy-efficiency tables normalized
 * to the spec's baseline accelerator, serializable to JSON and CSV.
 *
 * The paper's figure/table benches (Fig. 8, Fig. 9, Table I, Table IV,
 * scalability) are thin wrappers: load a checked-in spec, run it
 * through the shared runner, print the derived tables. Adding a
 * scenario means writing a JSON file, not a C++ binary:
 *
 * @code
 *   SimulationEngine engine;
 *   CampaignRunner runner(engine);
 *   const CampaignSpec spec = CampaignSpec::load("campaigns/fig8.json");
 *   const CampaignReport report = runner.run(spec);
 *   report.writeJsonFile("reports/fig8.report.json");
 * @endcode
 */

#ifndef PROSPERITY_ANALYSIS_CAMPAIGN_H
#define PROSPERITY_ANALYSIS_CAMPAIGN_H

#include <cstddef>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/engine.h"
#include "sim/table.h"
#include "stats/sampling_plan.h"
#include "stats/stopping.h"
#include "util/json.h"

namespace prosperity {

/** One labeled design point on a campaign's accelerator axis. The
 *  label is the column name in derived tables and must be unique
 *  within a spec (two ablation variants of one design need distinct
 *  labels). */
struct CampaignAccelerator
{
    std::string label;
    AcceleratorSpec spec;
};

bool operator==(const CampaignAccelerator& a, const CampaignAccelerator& b);
inline bool operator!=(const CampaignAccelerator& a,
                       const CampaignAccelerator& b)
{
    return !(a == b);
}

/**
 * A declarative experiment: named sweep axes plus an expansion rule.
 *
 * Expansion semantics (see expand()):
 * - **kCross** — every (option, workload, accelerator) combination,
 *   options outermost and accelerators innermost. With a single
 *   option set this is exactly SimulationEngine::runGrid's order: one
 *   row per workload, one column per accelerator.
 * - **kZip** — axes advance together. Every axis must have length n
 *   or length 1 (length-1 axes broadcast); job i combines element i
 *   of each axis.
 *
 * An empty `options` axis means one default-constructed RunOptions.
 */
struct CampaignSpec
{
    enum class Expansion { kCross, kZip };

    std::string name;
    std::string description;
    Expansion expansion = Expansion::kCross;
    /** Label of the accelerator derived tables normalize to; "" means
     *  the first accelerator. */
    std::string baseline;
    std::vector<CampaignAccelerator> accelerators;
    std::vector<Workload> workloads;
    std::vector<RunOptions> options;

    /**
     * When set, the campaign is *adaptive*: every unique job becomes a
     * Monte Carlo cell run until the plan's confidence target (or seed
     * cap), via stats::runAdaptive. Absent = classic fixed-seed
     * campaign, byte-identical specs and reports to before this field
     * existed.
     */
    std::optional<stats::SamplingPlan> sampling;

    /** The effective options axis (one default when `options` is empty). */
    std::vector<RunOptions> effectiveOptions() const;

    /** The label derived tables normalize to (resolves the "" default). */
    std::string baselineLabel() const;

    /**
     * One grid cell of the expansion: axis indices plus the index of
     * the unique job that simulates it (distinct cells may share a
     * job when axis entries repeat).
     */
    struct Cell
    {
        std::size_t accelerator_index = 0;
        std::size_t workload_index = 0;
        std::size_t option_index = 0;
        std::size_t job_index = 0; ///< into CampaignExpansion::jobs
    };

    struct CampaignExpansion
    {
        /** Unique jobs in deterministic first-seen order — duplicates
         *  (under SimulationEngine::jobKey) are expanded once. */
        std::vector<SimulationJob> jobs;
        /** Every grid cell, in expansion order. */
        std::vector<Cell> cells;
    };

    /**
     * Expand the axes into jobs + cells. Validates the spec and
     * throws std::invalid_argument with an actionable message on
     * empty axes, zip length mismatches, duplicate accelerator
     * labels, or an unknown baseline label.
     */
    CampaignExpansion expand() const;

    /** Just the unique jobs (deterministic, duplicate-free). */
    std::vector<SimulationJob> expandJobs() const;

    /**
     * Build a spec from its JSON form (schema: docs/CAMPAIGNS.md).
     * Throws std::invalid_argument with the offending key path on
     * malformed input; parse(serialize(spec)) == spec.
     */
    static CampaignSpec fromJson(const json::Value& value);

    /** Read + parse a spec file; errors mention the path. */
    static CampaignSpec load(const std::string& path);

    json::Value toJson() const;

    /** toJson() pretty-printed to `path`; false on I/O failure. */
    bool save(const std::string& path) const;
};

bool operator==(const CampaignSpec& a, const CampaignSpec& b);
inline bool operator!=(const CampaignSpec& a, const CampaignSpec& b)
{
    return !(a == b);
}

/**
 * Parse one SimulationJob from its JSON form — the body of the
 * service's `POST /v1/runs`:
 * `{"accelerator": {...}, "workload": {...}, "options": {...}}`, each
 * part using exactly the campaign-spec vocabulary (registry names,
 * `file:` model references, profile overrides). `context` prefixes the
 * key-path error messages. Throws std::invalid_argument on malformed
 * input; suites are rejected (a run is one workload).
 */
SimulationJob simulationJobFromJson(const json::Value& value,
                                    const std::string& context);

/** Inverse of simulationJobFromJson (file-registered models serialize
 *  back to their "file:" reference). */
json::Value simulationJobToJson(const SimulationJob& job);

/** One simulated cell of a campaign: where it sits in the spec's
 *  axes, the job that produced it, and the result. */
struct CampaignCell
{
    std::size_t accelerator_index = 0;
    std::size_t workload_index = 0;
    std::size_t option_index = 0;
    SimulationJob job;
    /** In adaptive campaigns, the seed-index-0 result — bitwise the
     *  result a fixed-seed run of the same spec produces. */
    RunResult result;
    /** Per-cell sampling outcome; set only for adaptive campaigns. */
    std::optional<stats::CellSampling> sampling;
};

/**
 * A derived comparison table: one column per accelerator label, one
 * row per (workload, option) pair, each value the baseline/cell ratio
 * of the metric (so bigger = better and the baseline column is 1.0).
 * Missing cells (zip expansions, filtered grids) are NaN and excluded
 * from the per-column geometric means.
 */
struct DerivedTable
{
    std::string metric;   ///< "speedup" or "energy_efficiency"
    std::string baseline; ///< accelerator label of the denominator
    std::vector<std::string> columns;    ///< accelerator labels
    std::vector<std::string> rows;       ///< row labels (workload names)
    std::vector<std::vector<double>> values; ///< rows x columns
    std::vector<double> geomean;         ///< per column, finite cells only
};

/** Render a derived table for terminal display ("n/a" for NaN). */
Table toTable(const DerivedTable& table, const std::string& title);

/**
 * Directory holding the checked-in campaign specs. The
 * PROSPERITY_CAMPAIGN_DIR environment variable wins; otherwise the
 * compile-time configured source-tree path; otherwise "campaigns".
 */
std::string defaultCampaignDir();

/** Load `defaultCampaignDir()/<name>.json`. */
CampaignSpec loadNamedCampaign(const std::string& name);

/** Structured outcome of a campaign run. */
struct CampaignReport
{
    /** `schema_version` written into every report JSON; bump on
     *  incompatible format changes. */
    static constexpr int kSchemaVersion = 1;

    CampaignSpec spec;
    std::vector<CampaignCell> cells; ///< expansion order

    /** Cell by axis indices; nullptr when absent. */
    const CampaignCell* cell(std::size_t accelerator_index,
                             std::size_t workload_index,
                             std::size_t option_index = 0) const;

    /** Result by accelerator label + workload display name. */
    const RunResult* find(const std::string& accelerator_label,
                          const std::string& workload_name,
                          std::size_t option_index = 0) const;

    /** seconds(baseline) / seconds(cell), normalized latency wins. */
    DerivedTable speedupTable() const;

    /** energy(baseline) / energy(cell), normalized energy wins. */
    DerivedTable energyEfficiencyTable() const;

    /** Full report document (schema: docs/CAMPAIGNS.md). */
    json::Value toJson() const;

    /** Flat per-cell CSV (plotting-friendly, one row per cell). */
    void writeCsv(std::ostream& os) const;

    bool writeJsonFile(const std::string& path) const;
    bool writeCsvFile(const std::string& path) const;
};

/**
 * Assemble a CampaignReport from a spec, its expansion, and the
 * per-job results (results[i] belongs to expansion.jobs[i]). Shared by
 * CampaignRunner and the serving layer, which collects the results
 * through its own futures.
 */
CampaignReport assembleCampaignReport(
    const CampaignSpec& spec,
    const CampaignSpec::CampaignExpansion& expansion,
    std::vector<RunResult> results);

/**
 * Per-job progress of a running campaign. Fixed-seed campaigns report
 * once per unique job (completed/total count jobs, seeds_drawn is 0).
 * Adaptive campaigns report once per *seed*: completed counts seeds
 * drawn campaign-wide, total is 0 (the stopping rule decides it),
 * job_index/job name the cell and seeds_drawn its seeds so far.
 */
struct CampaignProgress
{
    std::size_t completed = 0; ///< jobs (or seeds) finished so far
    std::size_t total = 0;     ///< unique jobs; 0 when open-ended
    std::size_t job_index = 0; ///< into CampaignExpansion::jobs
    std::size_t seeds_drawn = 0; ///< this cell's seeds (adaptive only)
    const SimulationJob* job = nullptr;
    const RunResult* result = nullptr;
};

/**
 * Executes CampaignSpecs through a shared SimulationEngine. Jobs are
 * dispatched via SimulationEngine::submit, so they spread across the
 * engine's worker pool, reuse its memoization cache, and complete
 * with a progress callback per job — long campaigns stream status
 * instead of going dark. Results are bitwise identical to a runBatch
 * of the same jobs.
 */
class CampaignRunner
{
  public:
    using ProgressCallback = std::function<void(const CampaignProgress&)>;

    explicit CampaignRunner(SimulationEngine& engine) : engine_(engine) {}

    /**
     * Expand and simulate `spec`, invoking `progress` (when set) once
     * per unique job in deterministic job order. Propagates engine
     * errors (unknown accelerator, bad params) as exceptions.
     *
     * Specs with a sampling plan dispatch to stats::runAdaptive: each
     * unique job is run over derived seed substreams until the plan's
     * stopping rule fires, progress is reported per seed (see
     * CampaignProgress), and every report cell carries its
     * CellSampling. The report — including the seeds drawn — is
     * bitwise identical for any engine thread count.
     */
    CampaignReport run(const CampaignSpec& spec,
                       const ProgressCallback& progress = {}) const;

  private:
    SimulationEngine& engine_;
};

} // namespace prosperity

#endif // PROSPERITY_ANALYSIS_CAMPAIGN_H
