#include "result_json.h"

#include "util/json_schema.h"

namespace prosperity {

namespace {

double
requireNumber(const json::Value& object, const char* key,
              const std::string& context)
{
    const json::Value* value = object.find(key);
    if (!value)
        json::schemaError(context, std::string("missing required key \"") +
                                       key + '"');
    return json::requireNumberValue(*value, context + "." + key);
}

} // namespace

json::Value
runResultToJson(const RunResult& result)
{
    json::Value root = json::Value::object();
    root.set("accelerator", result.accelerator);
    root.set("workload", result.workload);
    root.set("cycles", result.cycles);
    root.set("dense_macs", result.dense_macs);
    root.set("dram_bytes", result.dram_bytes);

    json::Value tech = json::Value::object();
    tech.set("frequency_hz", result.tech.frequency_hz);
    tech.set("node_nm", result.tech.node_nm);
    root.set("tech", std::move(tech));

    json::Value breakdown = json::Value::object();
    for (const auto& [component, pj] : result.energy.breakdown())
        breakdown.set(component, pj);
    root.set("energy_breakdown", std::move(breakdown));

    if (!result.layers.empty()) {
        json::Value layers = json::Value::array();
        for (const LayerRunRecord& layer : result.layers) {
            json::Value entry = json::Value::object();
            entry.set("layer", layer.layer_name);
            entry.set("cycles", layer.cycles);
            entry.set("dense_macs", layer.dense_macs);
            layers.push(std::move(entry));
        }
        root.set("layers", std::move(layers));
    }
    return root;
}

RunResult
runResultFromJson(const json::Value& value)
{
    const std::string top = "run result";
    json::requireObject(value, top);
    json::expectOnlyKeys(value,
                         {"accelerator", "workload", "cycles",
                          "dense_macs", "dram_bytes", "tech",
                          "energy_breakdown", "layers"},
                         top);

    RunResult result;
    result.accelerator = json::requireString(value, "accelerator", top);
    result.workload = json::requireString(value, "workload", top);
    result.cycles = requireNumber(value, "cycles", top);
    result.dense_macs = requireNumber(value, "dense_macs", top);
    result.dram_bytes = requireNumber(value, "dram_bytes", top);

    const json::Value* tech = value.find("tech");
    if (!tech)
        json::schemaError(top, "missing required key \"tech\"");
    json::requireObject(*tech, top + ".tech");
    json::expectOnlyKeys(*tech, {"frequency_hz", "node_nm"},
                         top + ".tech");
    result.tech.frequency_hz =
        requireNumber(*tech, "frequency_hz", top + ".tech");
    result.tech.node_nm = static_cast<int>(json::requireSize(
        *tech, "node_nm", top + ".tech"));

    const json::Value* breakdown = value.find("energy_breakdown");
    if (!breakdown)
        json::schemaError(top,
                          "missing required key \"energy_breakdown\"");
    json::requireObject(*breakdown, top + ".energy_breakdown");
    for (const auto& [component, pj] : breakdown->asObject()) {
        const double each = json::requireNumberValue(
            pj, top + ".energy_breakdown." + component);
        if (each < 0.0)
            json::schemaError(top + ".energy_breakdown." + component,
                              "energy must be non-negative, got " +
                                  json::formatDouble(each));
        result.energy.charge(component, each, 1.0);
    }

    if (const json::Value* layers = value.find("layers")) {
        const json::Value::Array& entries =
            json::requireArray(value, "layers", top);
        (void)layers;
        result.layers.reserve(entries.size());
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const std::string context =
                top + ".layers[" + std::to_string(i) + ']';
            json::requireObject(entries[i], context);
            json::expectOnlyKeys(entries[i],
                                 {"layer", "cycles", "dense_macs"},
                                 context);
            LayerRunRecord layer;
            layer.layer_name =
                json::requireString(entries[i], "layer", context);
            layer.cycles = requireNumber(entries[i], "cycles", context);
            layer.dense_macs =
                requireNumber(entries[i], "dense_macs", context);
            result.layers.push_back(std::move(layer));
        }
    }
    return result;
}

} // namespace prosperity
