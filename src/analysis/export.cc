#include "export.h"

#include "util/json.h"

namespace prosperity {

namespace {

std::string
quoteIfNeeded(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << quoteIfNeeded(cells[i]);
    }
    os_ << '\n';
}

std::string
CsvWriter::cell(double v)
{
    return json::formatDouble(v);
}

void
exportRunResults(std::ostream& os, const std::vector<RunResult>& results)
{
    CsvWriter csv(os);
    csv.writeRow({"workload", "accelerator", "cycles", "seconds",
                  "gops", "gopj", "energy_pj", "avg_power_w",
                  "dram_bytes"});
    for (const RunResult& r : results) {
        csv.writeRow({r.workload, r.accelerator, CsvWriter::cell(r.cycles),
                      CsvWriter::cell(r.seconds()),
                      CsvWriter::cell(r.gops()), CsvWriter::cell(r.gopj()),
                      CsvWriter::cell(r.energy.totalPj()),
                      CsvWriter::cell(r.averagePowerW()),
                      CsvWriter::cell(r.dram_bytes)});
    }
}

void
exportDensities(std::ostream& os,
                const std::vector<NamedDensity>& densities)
{
    CsvWriter csv(os);
    csv.writeRow({"workload", "bit_density", "product_density",
                  "product_density_two_prefix", "one_prefix_ratio",
                  "two_prefix_ratio", "exact_matches",
                  "partial_matches"});
    for (const NamedDensity& d : densities) {
        csv.writeRow({d.workload,
                      CsvWriter::cell(d.report.bitDensity()),
                      CsvWriter::cell(d.report.productDensity()),
                      CsvWriter::cell(d.report.productDensityTwoPrefix()),
                      CsvWriter::cell(d.report.onePrefixRatio()),
                      CsvWriter::cell(d.report.twoPrefixRatio()),
                      CsvWriter::cell(d.report.exact_matches),
                      CsvWriter::cell(d.report.partial_matches)});
    }
}

} // namespace prosperity
