/**
 * @file
 * The single sanctioned wall-clock portal in `src/`. The determinism
 * lint forbids `std::chrono::*_clock` everywhere else in the source
 * tree, so every latency measurement flows through these two entry
 * points. Keeping the clock behind one seam makes the inertness
 * argument for the metrics layer auditable: if simulation results
 * depended on time, the dependency would have to pass through here.
 */

#ifndef PROSPERITY_OBS_CLOCK_H
#define PROSPERITY_OBS_CLOCK_H

#include <cstdint>

namespace prosperity::obs {

/** Monotonic nanoseconds since an arbitrary epoch (steady clock). */
std::uint64_t monotonicNanos();

/** Seconds elapsed between two monotonicNanos() readings. */
inline double
elapsedSeconds(std::uint64_t start_ns, std::uint64_t end_ns)
{
    if (end_ns <= start_ns)
        return 0.0;
    return static_cast<double>(end_ns - start_ns) * 1e-9;
}

/** Monotonic stopwatch started at construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_ns_(monotonicNanos()) {}

    /** Seconds since construction (or the last restart()). */
    double elapsed() const
    {
        return elapsedSeconds(start_ns_, monotonicNanos());
    }

    void restart() { start_ns_ = monotonicNanos(); }

    std::uint64_t startNanos() const { return start_ns_; }

  private:
    std::uint64_t start_ns_;
};

} // namespace prosperity::obs

#endif // PROSPERITY_OBS_CLOCK_H
