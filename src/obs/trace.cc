/**
 * @file
 * Tracing implementation: the thread-local record path, the bounded
 * flight-recorder ring, trace-id mint/parse, and the Chrome
 * trace-event exporter. See trace.h for the design contract.
 */

#include "obs/trace.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>

#include "obs/clock.h"

namespace prosperity::obs {

namespace {

/** Buffered spans per thread before draining into the ring. */
constexpr std::size_t kFlushBatch = 64;

/** splitmix64 finalizer: cheap, deterministic id whitening. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-thread ambient context plus the local completed-span buffer. */
struct ThreadTraceState
{
    TraceContext context;
    std::vector<TraceSpan> buffer;
    std::uint32_t tid = 0;
};

ThreadTraceState&
threadState()
{
    static std::atomic<std::uint32_t> next_tid{0};
    thread_local ThreadTraceState state = [] {
        ThreadTraceState fresh;
        fresh.tid = next_tid.fetch_add(1, std::memory_order_relaxed);
        return fresh;
    }();
    return state;
}

std::uint64_t
nextSpanId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
flushThreadBuffer(ThreadTraceState& state)
{
    if (state.buffer.empty())
        return;
    TraceRecorder::global().record(state.buffer);
    state.buffer.clear();
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
formatTraceId(std::uint64_t id)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[id & 0xfu];
        id >>= 4;
    }
    return out;
}

std::uint64_t
parseTraceId(const std::string& text)
{
    if (text.empty() || text.size() > 16)
        return 0;
    std::uint64_t id = 0;
    for (char c : text) {
        int digit = hexDigit(c);
        if (digit < 0)
            return 0;
        id = (id << 4) | static_cast<std::uint64_t>(digit);
    }
    return id;
}

TraceContext
currentTraceContext()
{
    return threadState().context;
}

bool
traceActive()
{
    return TraceRecorder::global().enabled() &&
           threadState().context.trace_id != 0;
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
{
    ThreadTraceState& state = threadState();
    previous_ = state.context;
    state.context = context;
    installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext()
{
    if (!installed_)
        return;
    ThreadTraceState& state = threadState();
    state.context = previous_;
    // Drain now so the trace is collectible the moment the scope that
    // produced it ends (workers flush per task, not per process).
    flushThreadBuffer(state);
}

ScopedSpan::ScopedSpan(const char* category, const char* name)
{
    open(category);
    if (active_)
        name_ = name;
}

ScopedSpan::ScopedSpan(const char* category, const std::string& name)
{
    open(category);
    if (active_)
        name_ = name;
}

void
ScopedSpan::open(const char* category)
{
    ThreadTraceState& state = threadState();
    if (state.context.trace_id == 0 || !TraceRecorder::global().enabled())
        return;
    active_ = true;
    category_ = category;
    span_id_ = nextSpanId();
    parent_id_ = state.context.parent_span;
    state.context.parent_span = span_id_;
    start_ns_ = monotonicNanos();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    ThreadTraceState& state = threadState();
    state.context.parent_span = parent_id_;

    TraceSpan span;
    span.trace_id = state.context.trace_id;
    span.span_id = span_id_;
    span.parent_id = parent_id_;
    span.start_ns = start_ns_;
    span.end_ns = monotonicNanos();
    span.tid = state.tid;
    span.category = category_;
    span.name = std::move(name_);
    span.detail = std::move(detail_);
    state.buffer.push_back(std::move(span));
    if (state.buffer.size() >= kFlushBatch)
        flushThreadBuffer(state);
}

void
emitSpan(const char* category, const char* name, std::uint64_t start_ns,
         std::uint64_t end_ns)
{
    ThreadTraceState& state = threadState();
    if (state.context.trace_id == 0 || !TraceRecorder::global().enabled())
        return;

    TraceSpan span;
    span.trace_id = state.context.trace_id;
    span.span_id = nextSpanId();
    span.parent_id = state.context.parent_span;
    span.start_ns = start_ns;
    span.end_ns = end_ns < start_ns ? start_ns : end_ns;
    span.tid = state.tid;
    span.category = category;
    span.name = name;
    state.buffer.push_back(std::move(span));
    if (state.buffer.size() >= kFlushBatch)
        flushThreadBuffer(state);
}

TraceRecorder&
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::setEnabled(bool enabled)
{
    {
        util::MutexLock lock(mutex_);
        if (enabled)
            ring_.reserve(capacity_);
    }
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
TraceRecorder::setCapacity(std::size_t spans)
{
    util::MutexLock lock(mutex_);
    capacity_ = spans == 0 ? 1 : spans;
    ring_.clear();
    ring_.reserve(capacity_);
    cursor_ = 0;
}

std::size_t
TraceRecorder::capacity() const
{
    util::MutexLock lock(mutex_);
    return capacity_;
}

std::uint64_t
TraceRecorder::mintTraceId()
{
    std::uint64_t base = mint_base_.load(std::memory_order_relaxed);
    if (base == 0) {
        std::uint64_t fresh = monotonicNanos() | 1;
        mint_base_.compare_exchange_strong(base, fresh,
                                           std::memory_order_relaxed);
        base = mint_base_.load(std::memory_order_relaxed);
    }
    std::uint64_t n = next_trace_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t id = mix64(base + n);
    return id == 0 ? 1 : id;
}

void
TraceRecorder::record(std::vector<TraceSpan>& spans)
{
    if (!enabled_.load(std::memory_order_relaxed)) {
        spans.clear();
        return;
    }
    util::MutexLock lock(mutex_);
    for (TraceSpan& span : spans) {
        if (ring_.size() < capacity_) {
            ring_.push_back(std::move(span));
        } else {
            ring_[cursor_] = std::move(span);
        }
        cursor_ = (cursor_ + 1) % capacity_;
        recorded_.fetch_add(1, std::memory_order_relaxed);
    }
    spans.clear();
}

std::vector<TraceSpan>
TraceRecorder::collect(std::uint64_t trace_id) const
{
    std::vector<TraceSpan> out;
    {
        util::MutexLock lock(mutex_);
        for (const TraceSpan& span : ring_) {
            if (span.trace_id == trace_id)
                out.push_back(span);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                  if (a.start_ns != b.start_ns)
                      return a.start_ns < b.start_ns;
                  return a.span_id < b.span_id;
              });
    return out;
}

std::vector<TraceRecorder::TraceSummary>
TraceRecorder::recentTraces(std::size_t limit) const
{
    std::map<std::uint64_t, TraceSummary> by_trace;
    {
        util::MutexLock lock(mutex_);
        for (const TraceSpan& span : ring_) {
            TraceSummary& summary = by_trace[span.trace_id];
            if (summary.spans == 0) {
                summary.trace_id = span.trace_id;
                summary.start_ns = span.start_ns;
                summary.end_ns = span.end_ns;
                summary.root = span.name;
            } else {
                if (span.start_ns < summary.start_ns)
                    summary.start_ns = span.start_ns;
                if (span.end_ns > summary.end_ns)
                    summary.end_ns = span.end_ns;
            }
            // Prefer a true root span's name as the trace label.
            if (span.parent_id == 0)
                summary.root = span.name;
            ++summary.spans;
        }
    }
    std::vector<TraceSummary> out;
    out.reserve(by_trace.size());
    for (auto& entry : by_trace)
        out.push_back(std::move(entry.second));
    std::sort(out.begin(), out.end(),
              [](const TraceSummary& a, const TraceSummary& b) {
                  if (a.start_ns != b.start_ns)
                      return a.start_ns > b.start_ns;
                  return a.trace_id < b.trace_id;
              });
    if (out.size() > limit)
        out.resize(limit);
    return out;
}

void
TraceRecorder::clear()
{
    util::MutexLock lock(mutex_);
    ring_.clear();
    cursor_ = 0;
}

json::Value
chromeTraceJson(const std::vector<TraceSpan>& spans)
{
    std::vector<const TraceSpan*> ordered;
    ordered.reserve(spans.size());
    for (const TraceSpan& span : spans)
        ordered.push_back(&span);
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceSpan* a, const TraceSpan* b) {
                  if (a->start_ns != b->start_ns)
                      return a->start_ns < b->start_ns;
                  return a->span_id < b->span_id;
              });

    std::uint64_t base_ns = ordered.empty() ? 0 : ordered.front()->start_ns;

    json::Value events = json::Value::array();

    json::Value process = json::Value::object();
    process.set("name", "process_name");
    process.set("ph", "M");
    process.set("pid", 1);
    process.set("tid", 0);
    json::Value process_args = json::Value::object();
    process_args.set("name", "prosperity");
    process.set("args", std::move(process_args));
    events.push(std::move(process));

    std::vector<std::uint32_t> tids;
    for (const TraceSpan* span : ordered) {
        if (std::find(tids.begin(), tids.end(), span->tid) == tids.end())
            tids.push_back(span->tid);
    }
    std::sort(tids.begin(), tids.end());
    for (std::uint32_t tid : tids) {
        json::Value thread = json::Value::object();
        thread.set("name", "thread_name");
        thread.set("ph", "M");
        thread.set("pid", 1);
        thread.set("tid", static_cast<std::size_t>(tid));
        json::Value thread_args = json::Value::object();
        thread_args.set("name", "thread-" + std::to_string(tid));
        thread.set("args", std::move(thread_args));
        events.push(std::move(thread));
    }

    for (const TraceSpan* span : ordered) {
        json::Value event = json::Value::object();
        event.set("name", span->name);
        event.set("cat", std::string(span->category));
        event.set("ph", "X");
        event.set("ts",
                  static_cast<double>(span->start_ns - base_ns) / 1000.0);
        event.set("dur",
                  static_cast<double>(span->end_ns - span->start_ns) / 1000.0);
        event.set("pid", 1);
        event.set("tid", static_cast<std::size_t>(span->tid));
        json::Value args = json::Value::object();
        args.set("trace", formatTraceId(span->trace_id));
        args.set("span", formatTraceId(span->span_id));
        args.set("parent", formatTraceId(span->parent_id));
        if (!span->detail.empty())
            args.set("detail", span->detail);
        event.set("args", std::move(args));
        events.push(std::move(event));
    }

    json::Value doc = json::Value::object();
    doc.set("displayTimeUnit", "ms");
    doc.set("traceEvents", std::move(events));
    return doc;
}

} // namespace prosperity::obs
