/**
 * @file
 * Per-job distributed tracing: span timelines from HTTP ingress down
 * to the accelerator stage kernels, exported as Chrome trace-event
 * JSON (loadable in Perfetto / chrome://tracing).
 *
 * The design mirrors the metrics layer's contract (see metrics.h) and
 * adds context propagation:
 *
 *  1. **Inert.** Tracing observes; it never feeds back. Spans carry
 *     timestamps but no simulation state flows through them, golden
 *     reports and the t1-vs-t4 determinism pins hold with tracing
 *     compiled in and enabled (CI pins this), and every clock read
 *     stays behind obs::monotonicNanos() so the wall-clock lint keeps
 *     the rest of src/ time-free.
 *  2. **Lock-cheap record path.** A finished span is appended to a
 *     thread-local buffer — no lock, no syscall. The buffer drains
 *     into the process-wide ring in batches (when it fills, or when
 *     the thread's trace context detaches), so the ring mutex is
 *     touched once per ~dozens of spans, never per span.
 *  3. **Off by default, and free when off.** Without an installed
 *     trace context (or with the recorder disabled) ScopedSpan does
 *     not read the clock, copy a name, or allocate. Only `serve
 *     --trace[-slow-ms]` and `campaign --trace` turn recording on.
 *
 * The recorder is a bounded flight recorder: a fixed-capacity ring of
 * completed spans where new batches overwrite the oldest entries.
 * `collect(trace_id)` reassembles one request's timeline from
 * whatever the ring still holds; an evicted trace simply comes back
 * empty, it never blocks or grows memory.
 *
 * Context propagation is cooperative: code that hops threads captures
 * `currentTraceContext()` on the submitting thread and installs it on
 * the executing thread with a ScopedTraceContext (the engine's async
 * queue, runBatch's pool, and the service's adaptive-campaign task
 * all do this), so child spans land in the right trace with the right
 * parent regardless of which worker ran them.
 */

#ifndef PROSPERITY_OBS_TRACE_H
#define PROSPERITY_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/thread_annotations.h"

namespace prosperity::obs {

/** One completed span, as stored in the flight recorder. */
struct TraceSpan
{
    /** Trace this span belongs to (0 never occurs in the ring). */
    std::uint64_t trace_id = 0;
    /** Process-unique span id (minted from an atomic counter). */
    std::uint64_t span_id = 0;
    /** Enclosing span at emission time; 0 for a trace's root span. */
    std::uint64_t parent_id = 0;
    /** obs::monotonicNanos() at span open / close. */
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    /** Small dense per-thread id (first-use order, not OS tid). */
    std::uint32_t tid = 0;
    /** Coarse subsystem: "http", "engine", "layer", "stage", ... */
    const char* category = "";
    /** Span name; layer spans use the layer's own name. */
    std::string name;
    /** Optional free-form annotation (accelerator name, byte counts). */
    std::string detail;
};

/**
 * The ambient trace identity of the current thread: which trace new
 * spans join and which span they parent to. A zero trace_id means
 * "not traced" and makes every span operation a no-op.
 */
struct TraceContext
{
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
};

/** 16-digit lowercase-hex rendering of a trace id (the wire format). */
std::string formatTraceId(std::uint64_t id);

/**
 * Parse a trace id as sent in `X-Prosperity-Trace` or a
 * `/v1/traces/<id>` path: 1-16 hex digits, case-insensitive.
 * Returns 0 (the "no trace" sentinel) for anything malformed.
 */
std::uint64_t parseTraceId(const std::string& text);

/**
 * The thread's current context with `parent_span` pointing at the
 * innermost open span — capture this before handing work to another
 * thread so its spans nest under the span that dispatched them.
 */
TraceContext currentTraceContext();

/** True iff the recorder is on AND this thread has a live context. */
bool traceActive();

/**
 * Installs `context` as the thread's ambient trace for the enclosing
 * scope and restores the previous context on destruction, flushing
 * this thread's span buffer into the ring so a trace is collectible
 * as soon as the scope that produced it ends.
 */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(TraceContext context);
    ~ScopedTraceContext();
    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  private:
    TraceContext previous_;
    bool installed_ = false;
};

/**
 * RAII span: opens on construction, records on destruction. When the
 * thread is not being traced, construction does no clock read, no
 * allocation, and no string copy — the name parameter is a
 * `const char*` precisely so inactive call sites pay nothing.
 */
class ScopedSpan
{
  public:
    /** Static-name span ("simulate", "store.fetch", ...). */
    ScopedSpan(const char* category, const char* name);
    /** Dynamic-name span (layer names); copies only when active. */
    ScopedSpan(const char* category, const std::string& name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** True when this span will actually be recorded. */
    bool active() const { return active_; }

    /** Attach a free-form annotation (only call when active()). */
    void setDetail(std::string detail) { detail_ = std::move(detail); }

  private:
    void open(const char* category);

    bool active_ = false;
    const char* category_ = "";
    std::string name_;
    std::string detail_;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_id_ = 0;
    std::uint64_t start_ns_ = 0;
};

/**
 * Record an externally-timed span (both endpoints already measured
 * with obs::monotonicNanos()). Used where the interval crosses
 * threads — e.g. the engine's queue wait runs from submit() on the
 * caller thread to dequeue on the worker. No-op when the thread is
 * not being traced.
 */
void emitSpan(const char* category, const char* name,
              std::uint64_t start_ns, std::uint64_t end_ns);

/**
 * The process-wide flight recorder: a bounded ring of completed spans
 * plus the trace-id mint. Disabled (and allocation-free) until
 * setEnabled(true); the serve daemon and the campaign CLI enable it
 * behind explicit flags.
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /** The recorder every span in the process drains into. */
    static TraceRecorder& global();

    /** Turn recording on/off. Turning on allocates the ring once. */
    void setEnabled(bool enabled) EXCLUDES(mutex_);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Resize the ring (default 65536 spans). Clears current contents;
     * intended for process start-up and tests, not steady state.
     */
    void setCapacity(std::size_t spans) EXCLUDES(mutex_);
    std::size_t capacity() const EXCLUDES(mutex_);

    /**
     * Mint a fresh nonzero trace id. Ids mix the recorder's first-use
     * timestamp with a counter — unique within the process and across
     * quick restarts, with no entropy source (determinism lint).
     */
    std::uint64_t mintTraceId();

    /** Batch-append completed spans (moves them out of `spans`). */
    void record(std::vector<TraceSpan>& spans) EXCLUDES(mutex_);

    /**
     * Every ring-resident span of one trace, ordered by start time
     * (ties by span id). Empty when the trace was never recorded or
     * has been overwritten.
     */
    std::vector<TraceSpan> collect(std::uint64_t trace_id) const
        EXCLUDES(mutex_);

    /** Digest of one trace still (partially) in the ring. */
    struct TraceSummary
    {
        std::uint64_t trace_id = 0;
        /** Name of the earliest root span, or of the earliest span. */
        std::string root;
        std::size_t spans = 0;
        std::uint64_t start_ns = 0;
        std::uint64_t end_ns = 0;
    };

    /** Most recent traces (by start), newest first, at most `limit`. */
    std::vector<TraceSummary> recentTraces(std::size_t limit = 32) const
        EXCLUDES(mutex_);

    /** Spans accepted into the ring since start (wrapped or not). */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Drop all buffered spans (tests). */
    void clear() EXCLUDES(mutex_);

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<std::uint64_t> next_trace_{0};
    std::atomic<std::uint64_t> mint_base_{0};

    mutable util::Mutex mutex_;
    /** Fixed-size once enabled; `cursor_` is the next overwrite slot. */
    std::vector<TraceSpan> ring_ GUARDED_BY(mutex_);
    std::size_t cursor_ GUARDED_BY(mutex_) = 0;
    std::size_t capacity_ GUARDED_BY(mutex_) = 65536;
};

/**
 * Render spans as a Chrome trace-event document:
 * `{"traceEvents": [...]}` of complete ("ph":"X") events with
 * microsecond ts/dur rebased to the earliest span, pid 1, and the
 * recorder's dense thread ids — directly loadable in Perfetto.
 * Span/parent ids ride along in each event's "args".
 */
json::Value chromeTraceJson(const std::vector<TraceSpan>& spans);

} // namespace prosperity::obs

#endif // PROSPERITY_OBS_TRACE_H
