#include "metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/clock.h"
#include "util/json.h"

namespace prosperity::obs {

namespace {

/** Escape a label value per the Prometheus text format. */
std::string
escapeLabelValue(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c; break;
        }
    }
    return out;
}

/** Render `{k1="v1",k2="v2"}`, or "" for an empty label set. */
std::string
renderLabels(const LabelSet& labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += key;
        out += "=\"";
        out += escapeLabelValue(value);
        out += "\"";
    }
    out += "}";
    return out;
}

/** As renderLabels, with `le="<bound>"` appended inside the braces. */
std::string
renderLabelsWithLe(const LabelSet& labels, const std::string& le)
{
    std::string out = "{";
    for (const auto& [key, value] : labels) {
        out += key;
        out += "=\"";
        out += escapeLabelValue(value);
        out += "\",";
    }
    out += "le=\"";
    out += le;
    out += "\"}";
    return out;
}

const char*
kindName(bool is_counter, bool is_gauge)
{
    if (is_counter)
        return "counter";
    return is_gauge ? "gauge" : "histogram";
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    if (bounds_.empty())
        throw std::runtime_error("obs: histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        if (!(bounds_[i - 1] < bounds_[i]))
            throw std::runtime_error(
                "obs: histogram bounds must be strictly increasing");
}

void
Histogram::observe(double value)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.buckets.resize(buckets_.size());
    snap.count = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        snap.count += snap.buckets[i];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

std::vector<double>
latencyBuckets(int lo_exp, int hi_exp)
{
    if (lo_exp >= hi_exp)
        throw std::runtime_error("obs: latencyBuckets needs lo_exp < hi_exp");
    std::vector<double> bounds;
    bounds.reserve(static_cast<std::size_t>(hi_exp - lo_exp) * 3 + 1);
    for (int e = lo_exp; e < hi_exp; ++e)
        for (double mantissa : {1.0, 2.0, 5.0})
            bounds.push_back(mantissa * std::pow(10.0, e));
    bounds.push_back(std::pow(10.0, hi_exp));
    return bounds;
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(monotonicNanos())
{
}

ScopedTimer::~ScopedTimer()
{
    histogram_.observe(elapsedSeconds(start_ns_, monotonicNanos()));
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Family&
MetricsRegistry::familyLocked(const std::string& name, Kind kind,
                              const std::string& help,
                              const std::vector<double>* bounds)
{
    auto [it, inserted] = families_.try_emplace(name);
    Family& family = it->second;
    if (inserted) {
        family.kind = kind;
        family.help = help;
        if (bounds != nullptr)
            family.bounds = *bounds;
        return family;
    }
    if (family.kind != kind)
        throw std::runtime_error("obs: metric '" + name +
                                 "' re-registered with a different type");
    if (bounds != nullptr && family.bounds != *bounds)
        throw std::runtime_error("obs: histogram '" + name +
                                 "' re-registered with different bounds");
    return family;
}

Counter&
MetricsRegistry::counter(const std::string& name, const std::string& help,
                         const LabelSet& labels)
{
    util::MutexLock lock(mutex_);
    Family& family = familyLocked(name, Kind::kCounter, help, nullptr);
    Series& series = family.series[renderLabels(labels)];
    if (!series.counter) {
        series.labels = labels;
        series.counter = std::make_unique<Counter>();
    }
    return *series.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const std::string& help,
                       const LabelSet& labels)
{
    util::MutexLock lock(mutex_);
    Family& family = familyLocked(name, Kind::kGauge, help, nullptr);
    Series& series = family.series[renderLabels(labels)];
    if (!series.gauge) {
        series.labels = labels;
        series.gauge = std::make_unique<Gauge>();
    }
    return *series.gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name, const std::string& help,
                           const std::vector<double>& bounds,
                           const LabelSet& labels)
{
    util::MutexLock lock(mutex_);
    Family& family = familyLocked(name, Kind::kHistogram, help, &bounds);
    Series& series = family.series[renderLabels(labels)];
    if (!series.histogram) {
        series.labels = labels;
        series.histogram = std::make_unique<Histogram>(bounds);
    }
    return *series.histogram;
}

void
MetricsRegistry::renderPrometheus(std::ostream& out) const
{
    util::MutexLock lock(mutex_);
    for (const auto& [name, family] : families_) {
        out << "# HELP " << name << " " << family.help << "\n";
        out << "# TYPE " << name << " "
            << kindName(family.kind == Kind::kCounter,
                        family.kind == Kind::kGauge)
            << "\n";
        for (const auto& [rendered, series] : family.series) {
            switch (family.kind) {
            case Kind::kCounter:
                out << name << rendered << " " << series.counter->value()
                    << "\n";
                break;
            case Kind::kGauge:
                out << name << rendered << " "
                    << json::formatDouble(series.gauge->value()) << "\n";
                break;
            case Kind::kHistogram: {
                const Histogram::Snapshot snap = series.histogram->snapshot();
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
                    cumulative += snap.buckets[i];
                    out << name << "_bucket"
                        << renderLabelsWithLe(
                               series.labels,
                               json::formatDouble(snap.bounds[i]))
                        << " " << cumulative << "\n";
                }
                cumulative += snap.buckets.back();
                out << name << "_bucket"
                    << renderLabelsWithLe(series.labels, "+Inf") << " "
                    << cumulative << "\n";
                out << name << "_sum" << rendered << " "
                    << json::formatDouble(snap.sum) << "\n";
                out << name << "_count" << rendered << " " << snap.count
                    << "\n";
                break;
            }
            }
        }
    }
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::ostringstream out;
    renderPrometheus(out);
    return out.str();
}

} // namespace prosperity::obs
