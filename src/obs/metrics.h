/**
 * @file
 * Process-wide metrics: named counters, gauges, and fixed-bucket
 * latency histograms with Prometheus text exposition.
 *
 * Design constraints, in order:
 *
 *  1. **Inert.** Nothing here feeds back into simulation: instruments
 *     only accumulate, and the registry is only read by `/metrics`.
 *     Golden reports and thread-count determinism pins are unaffected
 *     by recording (CI pins this).
 *  2. **Lock-cheap record path.** `Counter::add`, `Gauge::set`, and
 *     `Histogram::observe` touch only preallocated atomics — no
 *     allocation, no mutex, no syscalls. The registry mutex guards
 *     registration and exposition only.
 *  3. **Consistent snapshots.** A histogram snapshot derives its
 *     `count` from the bucket reads it just took, so `sum(buckets)`
 *     always equals `count` even while recorders race the reader.
 *
 * Instruments are owned by the registry and live for the life of the
 * process; call sites hold plain references (typically in a
 * function-local static struct) so steady-state recording never
 * touches the registry again.
 */

#ifndef PROSPERITY_OBS_METRICS_H
#define PROSPERITY_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace prosperity::obs {

/** Ordered key/value pairs identifying one series within a family. */
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level that can move both ways. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    void sub(double delta) { add(-delta); }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** RAII +1/-1 on a gauge: exception-safe in-flight tracking. */
class GaugeGuard
{
  public:
    explicit GaugeGuard(Gauge& gauge) : gauge_(gauge) { gauge_.add(1.0); }
    ~GaugeGuard() { gauge_.sub(1.0); }
    GaugeGuard(const GaugeGuard&) = delete;
    GaugeGuard& operator=(const GaugeGuard&) = delete;

  private:
    Gauge& gauge_;
};

/**
 * Fixed-bucket histogram. Bounds are upper edges (Prometheus `le`
 * semantics: a value lands in the first bucket whose bound is >= it);
 * one extra overflow bucket catches everything above the last bound.
 */
class Histogram
{
  public:
    /** Bounds must be strictly increasing and non-empty. */
    explicit Histogram(std::vector<double> bounds);
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    /** Record one value. Wait-free: bound search + two fetch_adds. */
    void observe(double value);

    /** Point-in-time read of the histogram. */
    struct Snapshot
    {
        /** Upper bucket edges (same vector the histogram was built with). */
        std::vector<double> bounds;
        /** Per-bucket counts; size == bounds.size() + 1 (last = overflow). */
        std::vector<std::uint64_t> buckets;
        /** Total observations == sum of `buckets` (always consistent). */
        std::uint64_t count = 0;
        /** Sum of observed values; may trail `count` by in-flight updates. */
        double sum = 0.0;
    };

    Snapshot snapshot() const;

    const std::vector<double>& bounds() const { return bounds_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<double> sum_{0.0};
};

/**
 * Default latency bounds: 1-2-5 per decade from 10^lo_exp to
 * 10^hi_exp seconds inclusive, e.g. (-6, 1) gives 1us .. 10s.
 */
std::vector<double> latencyBuckets(int lo_exp = -6, int hi_exp = 1);

/** Records scope duration into a histogram on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram& histogram);
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    Histogram& histogram_;
    std::uint64_t start_ns_;
};

/**
 * Registry of named instrument families. A family is (name, type,
 * help, [bounds]); each LabelSet within it is a distinct series.
 * Re-requesting the same (name, labels) returns the same instrument;
 * requesting an existing name with a different type (or different
 * histogram bounds) throws std::runtime_error. Exposition is sorted
 * by name then labels, so output is independent of registration
 * order.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** The process-wide registry `/metrics` serves. */
    static MetricsRegistry& global();

    Counter& counter(const std::string& name, const std::string& help,
                     const LabelSet& labels = {}) EXCLUDES(mutex_);
    Gauge& gauge(const std::string& name, const std::string& help,
                 const LabelSet& labels = {}) EXCLUDES(mutex_);
    Histogram& histogram(const std::string& name, const std::string& help,
                         const std::vector<double>& bounds,
                         const LabelSet& labels = {}) EXCLUDES(mutex_);

    /** Prometheus text exposition (version 0.0.4) of every series. */
    void renderPrometheus(std::ostream& out) const EXCLUDES(mutex_);

    /** Convenience wrapper returning the exposition as a string. */
    std::string renderPrometheus() const EXCLUDES(mutex_);

  private:
    enum class Kind
    {
        kCounter,
        kGauge,
        kHistogram,
    };

    struct Series
    {
        LabelSet labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        Kind kind = Kind::kCounter;
        std::string help;
        std::vector<double> bounds; // histograms only
        /** Keyed by rendered label string for deterministic order. */
        std::map<std::string, Series> series;
    };

    Family& familyLocked(const std::string& name, Kind kind,
                         const std::string& help,
                         const std::vector<double>* bounds) REQUIRES(mutex_);

    mutable util::Mutex mutex_;
    std::map<std::string, Family> families_ GUARDED_BY(mutex_);
};

} // namespace prosperity::obs

#endif // PROSPERITY_OBS_METRICS_H
