#include "clock.h"

#include <chrono>

namespace prosperity::obs {

std::uint64_t
monotonicNanos()
{
    // lint:allow(rand-source) the one sanctioned wall-clock read; metrics only
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

} // namespace prosperity::obs
