/**
 * @file
 * ModelDesc: declarative SNN model definitions — a model is *data*,
 * not a C++ builder.
 *
 * A ModelDesc is the JSON-loadable form of a model architecture: an
 * ordered list of layer descriptors (conv / pool / linear / encoder)
 * that lowers against an InputConfig to exactly the ModelSpec a
 * hand-written builder would produce. The checked-in zoo under
 * models/ mirrors the C++ builders in src/snn/models.cc layer for
 * layer — pinned by tests/test_model_desc.cc — so evaluating a new
 * SNN means writing a JSON file, not editing the library.
 *
 * Lowering semantics mirror the builders' CnnState: a running
 * (channels, height, width) geometry that convs and pools advance, a
 * "spatial" flag that flips once any conv/pool has run (encoder blocks
 * then take their token count from the feature map, NLP models from
 * the dataset's seq_len), and a checkpoint register for residual
 * shortcut convolutions that consume the geometry from *before* the
 * downsampling conv. Values that depend on the dataset — classifier
 * widths, token counts — are written symbolically ("num_classes",
 * "seq_len") and resolved at lowering time, so one JSON definition
 * instantiates correctly for every dataset geometry.
 *
 * Schema reference and a worked custom-model example:
 * docs/WORKLOADS.md. Parse errors carry the offending key path;
 * parse(serialize(desc)) == desc.
 */

#ifndef PROSPERITY_SNN_MODEL_DESC_H
#define PROSPERITY_SNN_MODEL_DESC_H

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "snn/activation_profile.h"
#include "snn/models.h"
#include "util/json.h"

namespace prosperity {

/**
 * An integer field that may instead name an InputConfig field,
 * resolved when the desc is lowered ("num_classes" for classifier
 * widths, "seq_len" for token counts).
 */
struct SymbolicSize
{
    std::size_t value = 0;
    std::string symbol; ///< "" = literal `value`

    SymbolicSize() = default;
    SymbolicSize(std::size_t v) : value(v) {}
    explicit SymbolicSize(std::string s) : symbol(std::move(s)) {}

    std::size_t resolve(const InputConfig& input) const;

    bool operator==(const SymbolicSize&) const = default;
};

/** One convolution, lowered through im2col (makeConvLayer). */
struct ConvDesc
{
    std::string name;
    std::size_t out_channels = 1;
    std::size_t kernel = 3;
    std::size_t stride = 1;
    std::size_t padding = 0;
    bool spiking = true;
    /** Record the geometry *entering* this conv as the checkpoint
     *  (residual block entry). */
    bool checkpoint = false;
    /** Consume the checkpointed geometry instead of the running one
     *  (residual shortcut convs). */
    bool from_checkpoint = false;
    /** Advance the running geometry past this conv; false for branch
     *  convs whose output merges into the main path. */
    bool advance = true;

    bool operator==(const ConvDesc&) const = default;
};

/** Max/avg pooling; `global` pools the whole map to 1x1. */
struct PoolDesc
{
    std::string name;
    std::size_t factor = 2;
    bool global = false;

    bool operator==(const PoolDesc&) const = default;
};

/**
 * Fully connected layer. Without `in_features` it flattens the running
 * feature map (c*h*w) and resets the geometry to a feature vector,
 * exactly like the builders' CnnState::linear; with an explicit
 * `in_features` (transformer heads) the running geometry is left
 * untouched.
 */
struct LinearDesc
{
    std::string name;
    SymbolicSize out_features;
    std::optional<std::size_t> in_features;
    std::size_t tokens = 1;

    bool operator==(const LinearDesc&) const = default;
};

/**
 * `blocks` transformer encoder blocks named `<prefix>0`, `<prefix>1`,
 * ... (appendEncoderBlock). Token count defaults to the running
 * feature map's h*w after a conv stem, and to the dataset's seq_len
 * otherwise.
 */
struct EncoderDesc
{
    std::string prefix = "block";
    std::size_t blocks = 1;
    std::size_t dim = 0;
    std::size_t mlp_hidden = 0;
    bool softmax_attention = false;
    std::optional<SymbolicSize> seq_len;

    bool operator==(const EncoderDesc&) const = default;
};

/** One layer entry: the op plus an optional per-layer activation
 *  profile override (applied to every LayerSpec it lowers to). */
struct LayerDesc
{
    std::variant<ConvDesc, PoolDesc, LinearDesc, EncoderDesc> op;
    std::optional<ActivationProfile> profile;

    bool operator==(const LayerDesc&) const = default;
};

/** Declarative model definition; see the file comment. */
struct ModelDesc
{
    std::string name; ///< display name ("VGG16"); registry key lowercased
    std::string description;
    /** Default input geometry for standalone lowering (`model show`);
     *  when run as a workload the dataset's InputConfig wins. */
    std::optional<InputConfig> input;
    /** Default activation profile of workloads on this model (the
     *  calibration a C++ builder gets from the registry's table). */
    std::optional<ActivationProfile> profile;
    std::vector<LayerDesc> layers;

    bool operator==(const ModelDesc&) const = default;

    /**
     * Lower to the simulator's ModelSpec against `input`. Throws
     * std::invalid_argument naming the offending layer on geometry
     * errors (empty conv input, flatten before any spatial layer,
     * encoder without token source).
     */
    ModelSpec lower(const InputConfig& input) const;

    /** `input` when set, else a default-constructed InputConfig. */
    InputConfig defaultInput() const;

    /**
     * Build a desc from its JSON form (schema: docs/WORKLOADS.md).
     * Throws std::invalid_argument with the offending key path on
     * malformed input; parse(serialize(desc)) == desc.
     */
    static ModelDesc fromJson(const json::Value& value);

    /** Read + parse a model file; errors mention the path. */
    static ModelDesc load(const std::string& path);

    json::Value toJson() const;

    /** toJson() pretty-printed to `path`; false on I/O failure. */
    bool save(const std::string& path) const;
};

/**
 * Parse a (possibly partial) ActivationProfile object on top of
 * `base`; key-path errors against `context`. Shared with the campaign
 * spec's per-workload profile overrides.
 */
ActivationProfile profileFromJson(const json::Value& value,
                                  ActivationProfile base,
                                  const std::string& context);

/** Full 7-field JSON form of a profile (canonical field order). */
json::Value profileToJson(const ActivationProfile& profile);

} // namespace prosperity

#endif // PROSPERITY_SNN_MODEL_DESC_H
