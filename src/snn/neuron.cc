#include "neuron.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace prosperity {

LifArray::LifArray(std::size_t num_neurons, LifParams params)
    : params_(params), potentials_(num_neurons, 0.0)
{
    PROSPERITY_ASSERT(params_.threshold > 0.0, "threshold must be positive");
    PROSPERITY_ASSERT(params_.leak >= 0.0 && params_.leak <= 1.0,
                      "leak factor must lie in [0, 1]");
}

void
LifArray::reset()
{
    std::fill(potentials_.begin(), potentials_.end(), 0.0);
}

BitVector
LifArray::step(const std::int32_t* currents, std::size_t count)
{
    PROSPERITY_ASSERT(count == potentials_.size(),
                      "current vector width mismatch");
    BitVector spikes(count);
    for (std::size_t i = 0; i < count; ++i) {
        double v = potentials_[i] * params_.leak +
                   static_cast<double>(currents[i]);
        if (v >= params_.threshold) {
            spikes.set(i);
            v = params_.soft_reset ? v - params_.threshold : 0.0;
        }
        potentials_[i] = v;
    }
    return spikes;
}

BitMatrix
LifArray::run(const OutputMatrix& currents)
{
    PROSPERITY_ASSERT(currents.cols() == potentials_.size(),
                      "current matrix width mismatch");
    BitMatrix spikes(currents.rows(), currents.cols());
    for (std::size_t t = 0; t < currents.rows(); ++t)
        spikes.row(t) = step(currents.rowPtr(t), currents.cols());
    return spikes;
}

FsNeuron::FsNeuron(std::size_t time_steps, std::size_t max_spikes,
                   double value_range)
    : time_steps_(time_steps), max_spikes_(max_spikes),
      value_range_(value_range)
{
    PROSPERITY_ASSERT(time_steps_ > 0, "FS neuron needs >= 1 time step");
    PROSPERITY_ASSERT(value_range_ > 0.0, "value range must be positive");
}

BitVector
FsNeuron::encode(double activation) const
{
    BitVector train(time_steps_);
    double residual = std::clamp(activation, 0.0, value_range_);
    std::size_t spikes = 0;
    for (std::size_t t = 0; t < time_steps_ && spikes < max_spikes_; ++t) {
        const double weight = value_range_ / std::pow(2.0, double(t) + 1.0);
        // Fire when taking the spike reduces the coding error.
        if (residual >= weight / 2.0) {
            train.set(t);
            residual -= weight;
            ++spikes;
        }
    }
    return train;
}

double
FsNeuron::decode(const BitVector& train) const
{
    PROSPERITY_ASSERT(train.size() == time_steps_, "train length mismatch");
    double value = 0.0;
    for (std::size_t t = 0; t < time_steps_; ++t)
        if (train.test(t))
            value += value_range_ / std::pow(2.0, double(t) + 1.0);
    return value;
}

} // namespace prosperity
