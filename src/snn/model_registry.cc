#include "model_registry.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "sim/logging.h"

namespace prosperity {

namespace {

std::string
lowercase(const std::string& name)
{
    std::string out = name;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

std::string
roster(const std::vector<std::string>& names)
{
    std::string out;
    for (const std::string& name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

// --- ModelRegistry ----------------------------------------------------

std::string
ModelRegistry::canonicalKey(const std::string& name)
{
    return lowercase(name);
}

ModelRegistry&
ModelRegistry::instance()
{
    static ModelRegistry* registry = [] {
        auto* r = new ModelRegistry();
        registerBuiltinModels(*r);
        return r;
    }();
    return *registry;
}

bool
ModelRegistry::add(ModelInfo info)
{
    PROSPERITY_ASSERT(info.builder != nullptr, "null model builder");
    const std::string key = canonicalKey(info.name);
    util::MutexLock lock(mutex_);
    for (const Entry& entry : entries_)
        if (entry.key == key)
            return false;
    entries_.push_back(Entry{key, std::move(info), std::nullopt, {}});
    return true;
}

bool
ModelRegistry::addDesc(ModelDesc desc, std::string source)
{
    ModelInfo info;
    info.name = desc.name;
    info.description = desc.description;
    info.profile = desc.profile.value_or(ActivationProfile{});
    info.builder = [desc](const InputConfig& input) {
        return desc.lower(input);
    };
    const std::string key = canonicalKey(info.name);
    util::MutexLock lock(mutex_);
    for (const Entry& entry : entries_)
        if (entry.key == key)
            return false;
    entries_.push_back(
        Entry{key, std::move(info), std::move(desc), std::move(source)});
    return true;
}

const ModelRegistry::Entry*
ModelRegistry::find(const std::string& name) const
{
    const std::string key = canonicalKey(name);
    for (const Entry& entry : entries_)
        if (entry.key == key)
            return &entry;
    return nullptr;
}

void
ModelRegistry::throwUnknown(const std::string& name) const
{
    throw std::invalid_argument("unknown model \"" + name +
                                "\" (registered: " + roster(names()) +
                                ")");
}

bool
ModelRegistry::contains(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    return find(name) != nullptr;
}

std::vector<std::string>
ModelRegistry::names() const
{
    util::MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_)
        out.push_back(entry.info.name);
    return out;
}

std::string
ModelRegistry::description(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->info.description : std::string{};
}

std::string
ModelRegistry::displayName(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->info.name : canonicalKey(name);
}

ModelSpec
ModelRegistry::build(const std::string& name,
                     const InputConfig& input) const
{
    Builder builder;
    {
        util::MutexLock lock(mutex_);
        if (const Entry* entry = find(name))
            builder = entry->info.builder;
    }
    if (!builder)
        throwUnknown(name);
    return builder(input);
}

ActivationProfile
ModelRegistry::profileFor(const std::string& model,
                          const std::string& dataset) const
{
    const std::string dataset_key = DatasetRegistry::canonicalKey(dataset);
    util::MutexLock lock(mutex_);
    const Entry* entry = find(model);
    if (!entry) {
        // names() locks too; build the roster without re-entering.
        std::vector<std::string> known;
        for (const Entry& e : entries_)
            known.push_back(e.info.name);
        throw std::invalid_argument("unknown model \"" + model +
                                    "\" (registered: " + roster(known) +
                                    ")");
    }
    ActivationProfile profile = entry->info.profile;
    for (const auto& [key, bit_density] :
         entry->info.dataset_bit_density)
        if (DatasetRegistry::canonicalKey(key) == dataset_key)
            profile.bit_density = bit_density;
    return profile;
}

std::optional<ModelDesc>
ModelRegistry::desc(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->desc : std::nullopt;
}

std::string
ModelRegistry::sourceOf(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->source : std::string{};
}

// --- DatasetRegistry --------------------------------------------------

std::string
DatasetRegistry::canonicalKey(const std::string& name)
{
    return lowercase(name);
}

DatasetRegistry&
DatasetRegistry::instance()
{
    static DatasetRegistry* registry = [] {
        auto* r = new DatasetRegistry();
        registerBuiltinDatasets(*r);
        return r;
    }();
    return *registry;
}

bool
DatasetRegistry::add(DatasetInfo info)
{
    const std::string key = canonicalKey(info.name);
    util::MutexLock lock(mutex_);
    for (const Entry& entry : entries_)
        if (entry.key == key)
            return false;
    entries_.push_back(Entry{key, std::move(info)});
    return true;
}

const DatasetRegistry::Entry*
DatasetRegistry::find(const std::string& name) const
{
    const std::string key = canonicalKey(name);
    for (const Entry& entry : entries_)
        if (entry.key == key)
            return &entry;
    return nullptr;
}

bool
DatasetRegistry::contains(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    return find(name) != nullptr;
}

std::vector<std::string>
DatasetRegistry::names() const
{
    util::MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_)
        out.push_back(entry.info.name);
    return out;
}

std::string
DatasetRegistry::description(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->info.description : std::string{};
}

std::string
DatasetRegistry::displayName(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    const Entry* entry = find(name);
    return entry ? entry->info.name : canonicalKey(name);
}

InputConfig
DatasetRegistry::inputConfig(const std::string& name) const
{
    util::MutexLock lock(mutex_);
    if (const Entry* entry = find(name))
        return entry->info.input;
    std::vector<std::string> known;
    for (const Entry& entry : entries_)
        known.push_back(entry.info.name);
    throw std::invalid_argument("unknown dataset \"" + name +
                                "\" (registered: " + roster(known) + ")");
}

InputConfig
defaultInputConfig(const std::string& dataset)
{
    return DatasetRegistry::instance().inputConfig(dataset);
}

std::string
defaultModelDir()
{
    if (const char* env = std::getenv("PROSPERITY_MODEL_DIR"))
        return env;
#ifdef PROSPERITY_MODEL_DIR
    return PROSPERITY_MODEL_DIR;
#else
    return "models";
#endif
}

std::string
resolveModelPath(const std::string& path)
{
    const auto opens = [](const std::string& p) {
        return static_cast<bool>(std::ifstream(p));
    };
    if (opens(path) || path.empty() || path.front() == '/')
        return path;
    const std::string dir = defaultModelDir();
    std::string candidate = dir + "/" + path;
    if (opens(candidate))
        return candidate;
    // "models/foo.json" written repo-relative: strip the directory
    // component that defaultModelDir() already provides.
    if (path.rfind("models/", 0) == 0) {
        candidate = dir + "/" + path.substr(7);
        if (opens(candidate))
            return candidate;
    }
    return path;
}

std::string
registerModelFile(const std::string& path)
{
    const std::string resolved = resolveModelPath(path);
    ModelDesc desc = ModelDesc::load(resolved);
    ModelRegistry& registry = ModelRegistry::instance();
    const std::string key = ModelRegistry::canonicalKey(desc.name);
    // Register first, diagnose on failure: addDesc is atomic, so two
    // threads racing on the same name cannot both "win" — the loser
    // lands here and must find an identical definition already
    // present.
    if (registry.addDesc(desc, path))
        return key;
    const std::optional<ModelDesc> existing = registry.desc(key);
    if (!existing)
        throw std::invalid_argument(
            resolved + ": model \"" + desc.name +
            "\" collides with a built-in model — rename it, or "
            "reference the built-in by name");
    if (!(*existing == desc)) {
        const std::string prior = registry.sourceOf(key);
        throw std::invalid_argument(
            resolved + ": model \"" + desc.name +
            "\" is already registered with a different definition" +
            (prior.empty() ? "" : " (loaded from " + prior + ")"));
    }
    return key;
}

// --- Built-in zoo -----------------------------------------------------

void
registerBuiltinModels(ModelRegistry& registry)
{
    using Info = ModelRegistry::ModelInfo;
    // Calibration values (DESIGN.md substitution #1): bit densities the
    // paper quotes exactly are used verbatim (VGG-16/CIFAR100 34.21%,
    // SpikingBERT/SST-2 20.49%, SpikeBERT 13.19%); the rest follow the
    // per-family levels visible in Fig. 11. Correlation parameters are
    // tuned so measured product densities land in the paper's range
    // (average ~5x below bit density, up to ~20x for SpikeBERT).
    registry.add(Info{
        "VGG16",
        "VGG-16 spiking CNN with the standard CIFAR head (13 conv + 2 FC)",
        &buildVgg16,
        {0.32, 0.95, 8, 0.30, 0.55, 0.10},
        {{"cifar100", 0.3421}, {"cifar10dvs", 0.28}}});
    registry.add(Info{
        "VGG9",
        "VGG-9 spiking CNN: 7 conv + 2 FC CIFAR variant",
        &buildVgg9,
        {0.28, 0.92, 9, 0.30, 0.50, 0.10},
        {{"cifar100", 0.30}, {"mnist", 0.24}}});
    registry.add(Info{
        "ResNet18",
        "ResNet-18 spiking CNN with CIFAR stem (3x3 conv1, no initial "
        "pool)",
        &buildResNet18,
        {0.14, 0.70, 14, 0.28, 0.30, 0.10},
        {{"cifar100", 0.15}, {"cifar10dvs", 0.18}}});
    registry.add(Info{
        "LeNet5",
        "LeNet-5 (\"LN5\"), the classic MNIST network, spiking version",
        &buildLeNet5,
        {0.22, 0.78, 12, 0.30, 0.35, 0.10},
        {}});
    registry.add(Info{
        "Spikformer",
        "Spikformer-4-384: SPS conv stem, 4 encoder blocks, dim 384, "
        "softmax-free spiking self attention",
        &buildSpikformer,
        {0.22, 0.80, 12, 0.26, 0.35, 0.12},
        {{"cifar100", 0.23}, {"cifar10dvs", 0.20}}});
    registry.add(Info{
        "SDT",
        "Spike-Driven Transformer (SDT-2-512): conv stem, 2 encoder "
        "blocks, dim 512",
        &buildSdt,
        {0.13, 0.68, 14, 0.28, 0.30, 0.12},
        {{"cifar100", 0.14}, {"cifar10dvs", 0.15}}});
    registry.add(Info{
        "SpikeBERT",
        "SpikeBERT: 12 encoder blocks, hidden 768, softmax attention + "
        "layernorm on the SFU",
        &buildSpikeBert,
        // Paper abstract: bit density 13.19%, product density 1.23%.
        {0.1319, 0.90, 6, 0.32, 0.55, 0.08},
        {}});
    registry.add(Info{
        "SpikingBERT",
        "SpikingBERT: 4 encoder blocks, hidden 768 (distilled BERT "
        "student)",
        &buildSpikingBert,
        // Table II: bit 20.49%, one-prefix product 2.98% on SST-2.
        {0.2049, 0.84, 12, 0.30, 0.45, 0.12},
        {}});
    // The LoAS Table V CNNs: not part of the Fig. 8 / Fig. 11 suites,
    // but registered so dual-sparsity studies are one campaign away.
    // Profiles follow the spiking-CNN family calibration.
    registry.add(Info{
        "AlexNet",
        "AlexNet CIFAR variant: 5 conv + 3 FC (LoAS dual-sparsity "
        "study, Table V)",
        &buildAlexNet,
        {0.26, 0.80, 12, 0.30, 0.40, 0.10},
        {}});
    registry.add(Info{
        "ResNet19",
        "ResNet-19: widened 3-stage CIFAR ResNet (LoAS dual-sparsity "
        "study, Table V)",
        &buildResNet19,
        {0.15, 0.72, 14, 0.28, 0.32, 0.10},
        {}});
}

void
registerBuiltinDatasets(DatasetRegistry& registry)
{
    using Info = DatasetRegistry::DatasetInfo;
    registry.add(Info{"CIFAR10",
                      "32x32 RGB images, 10 classes (T=4)",
                      {4, 3, 32, 32, 64, 10}});
    registry.add(Info{"CIFAR100",
                      "32x32 RGB images, 100 classes (T=4)",
                      {4, 3, 32, 32, 64, 100}});
    // DVS event streams: 2 polarity channels, 128x128 frames resized
    // to 64x64, 8 time steps (standard SpikingJelly preprocessing).
    registry.add(Info{"CIFAR10DVS",
                      "event-camera CIFAR10: 2 polarity channels, "
                      "64x64, 10 classes (T=8)",
                      {8, 2, 64, 64, 64, 10}});
    registry.add(Info{"MNIST",
                      "28x28 grayscale digits, 10 classes (T=4)",
                      {4, 1, 28, 28, 64, 10}});
    registry.add(Info{"SST-2",
                      "binary sentiment (GLUE SST-2), 64 tokens",
                      {4, 3, 32, 32, 64, 2}});
    registry.add(Info{"SST-5",
                      "five-way sentiment (SST-5), 64 tokens",
                      {4, 3, 32, 32, 64, 5}});
    registry.add(Info{"MR",
                      "movie-review sentiment (MR), 64 tokens",
                      {4, 3, 32, 32, 64, 2}});
    registry.add(Info{"QQP",
                      "Quora question pairs (GLUE QQP), 128 tokens",
                      {4, 3, 32, 32, 128, 2}});
    registry.add(Info{"MNLI",
                      "natural language inference (GLUE MNLI), "
                      "128 tokens",
                      {4, 3, 32, 32, 128, 3}});
}

} // namespace prosperity
