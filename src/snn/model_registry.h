/**
 * @file
 * Model and dataset registries: construct any workload by name.
 *
 * The workload layer's analogue of the AcceleratorRegistry — the three
 * axes of an experiment (accelerator, model, dataset) are all open,
 * string-keyed registries now. Every model registers a builder
 * (InputConfig -> ModelSpec) plus its calibrated activation statistics
 * under a canonical lowercase key; every dataset registers the
 * InputConfig it imposes (time steps, geometry, classes) — the single
 * source of truth for `defaultInputConfig`. Lookup is case-insensitive
 * so the display names used in reports ("VGG16", "SST-2") resolve too.
 *
 * Built-in entries are the paper's zoo (the eight Fig. 8 / Fig. 11
 * models plus the LoAS Table V CNNs and the nine evaluation datasets);
 * they are also checked in declaratively as models/<key>.json, pinned
 * equivalent to the C++ builders by tests/test_model_desc.cc. Opening
 * a new workload therefore needs no library edit:
 *
 *  - register a ModelDesc at run time (`addDesc`), e.g. from a JSON
 *    file — campaign specs do this for `"model": "file:<path>.json"`;
 *  - or register a C++ builder (`add`) from application code.
 *
 * Like the AcceleratorRegistry, registration is explicit (no
 * static-initializer tricks) and the registry hands out copies, never
 * references into its locked state.
 */

#ifndef PROSPERITY_SNN_MODEL_REGISTRY_H
#define PROSPERITY_SNN_MODEL_REGISTRY_H

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "snn/activation_profile.h"
#include "snn/model_desc.h"
#include "snn/models.h"
#include "util/thread_annotations.h"

namespace prosperity {

/** Name -> builder registry for every known model architecture. */
class ModelRegistry
{
  public:
    using Builder = std::function<ModelSpec(const InputConfig&)>;

    /** Everything a model registers under its name. */
    struct ModelInfo
    {
        std::string name; ///< display name ("VGG16"); key is lowercased
        std::string description;
        Builder builder;
        /** Calibrated activation statistics of workloads on this
         *  model (DESIGN.md substitution #1). */
        ActivationProfile profile{};
        /** Per-dataset bit-density overrides (dataset name -> value),
         *  for the workloads the paper quotes exactly. */
        std::vector<std::pair<std::string, double>> dataset_bit_density{};
    };

    /** The process-wide registry, with all built-in models present. */
    static ModelRegistry& instance();

    /**
     * The canonical form a name is registered and looked up under
     * (lowercase). Workload identity — e.g. Workload::model — uses
     * this.
     */
    static std::string canonicalKey(const std::string& name);

    /** Register a model (matched case-insensitively). Returns false
     *  if the name is already taken. */
    bool add(ModelInfo info);

    /**
     * Register a declarative model: the builder lowers `desc` against
     * the requested InputConfig; the default profile is `desc.profile`
     * (or the ActivationProfile defaults). `source` records where the
     * desc came from (e.g. the "file:" reference of a campaign spec)
     * so specs serialize back to the same reference.
     */
    bool addDesc(ModelDesc desc, std::string source = "");

    bool contains(const std::string& name) const;

    /** Registered display names, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of a model ("" if unknown). */
    std::string description(const std::string& name) const;

    /** Display name of a model; the canonical key itself if unknown
     *  (never throws — report labels must not). */
    std::string displayName(const std::string& name) const;

    /**
     * Build `name` lowered for `input`. Throws std::invalid_argument
     * for unknown names (the message lists the registered ones).
     */
    ModelSpec build(const std::string& name,
                    const InputConfig& input) const;

    /**
     * Calibrated activation profile of (model, dataset): the model's
     * base profile with its per-dataset bit-density override applied.
     * Throws for unknown model names; unknown datasets just get the
     * base profile (custom datasets are legitimate).
     */
    ActivationProfile profileFor(const std::string& model,
                                 const std::string& dataset) const;

    /** The declarative form of a desc-backed model; nullopt for
     *  builder-backed entries and unknown names. */
    std::optional<ModelDesc> desc(const std::string& name) const;

    /** Source reference a desc-backed model was registered from (""
     *  when registered programmatically or unknown). */
    std::string sourceOf(const std::string& name) const;

  private:
    ModelRegistry() = default;

    struct Entry
    {
        std::string key; ///< canonical (lowercase)
        ModelInfo info;
        std::optional<ModelDesc> desc;
        std::string source;
    };

    const Entry* find(const std::string& name) const REQUIRES(mutex_);
    /** Throws listing the roster; takes the lock itself (via names()). */
    [[noreturn]] void throwUnknown(const std::string& name) const
        EXCLUDES(mutex_);

    mutable util::Mutex mutex_;
    std::vector<Entry> entries_ GUARDED_BY(mutex_);
};

/** Name -> InputConfig registry for every known dataset. */
class DatasetRegistry
{
  public:
    /** Everything a dataset registers under its name. */
    struct DatasetInfo
    {
        std::string name; ///< display name ("SST-2"); key is lowercased
        std::string description;
        InputConfig input{};
    };

    /** The process-wide registry, with all built-in datasets present. */
    static DatasetRegistry& instance();

    static std::string canonicalKey(const std::string& name);

    /** Register a dataset. Returns false if the name is taken. */
    bool add(DatasetInfo info);

    bool contains(const std::string& name) const;

    /** Registered display names, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of a dataset ("" if unknown). */
    std::string description(const std::string& name) const;

    /** Display name of a dataset; the canonical key itself if
     *  unknown. */
    std::string displayName(const std::string& name) const;

    /**
     * The input geometry + time steps the dataset imposes — the single
     * source of truth for workload construction. Throws
     * std::invalid_argument for unknown names (the message lists the
     * registered ones).
     */
    InputConfig inputConfig(const std::string& name) const;

  private:
    DatasetRegistry() = default;

    struct Entry
    {
        std::string key;
        DatasetInfo info;
    };

    const Entry* find(const std::string& name) const REQUIRES(mutex_);

    mutable util::Mutex mutex_;
    std::vector<Entry> entries_ GUARDED_BY(mutex_);
};

/** DatasetRegistry::instance().inputConfig(dataset) — the InputConfig
 *  every workload construction site derives from. */
InputConfig defaultInputConfig(const std::string& dataset);

/**
 * Directory holding the checked-in model definitions. The
 * PROSPERITY_MODEL_DIR environment variable wins; otherwise the
 * compile-time configured source-tree path; otherwise "models".
 */
std::string defaultModelDir();

/**
 * Resolve a model-file reference: the path as given if it opens,
 * otherwise (for relative paths) against defaultModelDir() — with or
 * without a leading "models/" component, so "file:models/foo.json"
 * works from any working directory. Returns the original path when
 * nothing resolves (the subsequent load error then names it).
 */
std::string resolveModelPath(const std::string& path);

/**
 * Load the ModelDesc at `path` (via resolveModelPath) and register it,
 * remembering `path` as the entry's source. Idempotent: reloading an
 * identical definition returns the existing key. Throws
 * std::invalid_argument on parse errors, on redefining a registered
 * desc differently, and on colliding with a built-in (builder-backed)
 * model name. Returns the registry key.
 */
std::string registerModelFile(const std::string& path);

/**
 * Registration hooks for the built-in zoo, invoked once by the
 * instance() accessors (kept explicit so static archives cannot
 * dead-strip them, mirroring the accelerator registry).
 */
void registerBuiltinModels(ModelRegistry& registry);
void registerBuiltinDatasets(DatasetRegistry& registry);

} // namespace prosperity

#endif // PROSPERITY_SNN_MODEL_REGISTRY_H
