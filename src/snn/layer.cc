#include "layer.h"

#include "sim/logging.h"

namespace prosperity {

const char*
layerTypeName(LayerType type)
{
    switch (type) {
      case LayerType::kConv: return "conv";
      case LayerType::kLinear: return "linear";
      case LayerType::kAttentionQK: return "attn_qk";
      case LayerType::kAttentionSV: return "attn_sv";
      case LayerType::kSoftmax: return "softmax";
      case LayerType::kLayerNorm: return "layernorm";
      case LayerType::kPool: return "pool";
    }
    return "?";
}

double
ModelSpec::totalDenseOps() const
{
    double ops = 0.0;
    for (const auto& layer : layers)
        ops += layer.denseOps();
    return ops;
}

double
ModelSpec::spikingGemmOps() const
{
    double ops = 0.0;
    for (const auto& layer : layers)
        if (layer.isSpikingGemm())
            ops += layer.denseOps();
    return ops;
}

std::size_t
ModelSpec::numSpikingGemms() const
{
    std::size_t count = 0;
    for (const auto& layer : layers)
        if (layer.isSpikingGemm())
            ++count;
    return count;
}

bool
operator==(const LayerSpec& a, const LayerSpec& b)
{
    return a.name == b.name && a.type == b.type &&
           a.time_steps == b.time_steps && a.gemm == b.gemm &&
           a.sfu_ops == b.sfu_ops && a.spiking == b.spiking &&
           a.profile_override == b.profile_override;
}

bool
operator==(const ModelSpec& a, const ModelSpec& b)
{
    return a.name == b.name && a.time_steps == b.time_steps &&
           a.layers == b.layers;
}

LayerSpec
makeConvLayer(const std::string& name, std::size_t time_steps,
              std::size_t in_h, std::size_t in_w, const ConvParams& conv)
{
    PROSPERITY_ASSERT(in_h >= 1 && in_w >= 1, "empty conv input");
    LayerSpec layer;
    layer.name = name;
    layer.type = LayerType::kConv;
    layer.time_steps = time_steps;
    layer.gemm.m = time_steps * conv.outDim(in_h) * conv.outDim(in_w);
    layer.gemm.k = conv.in_channels * conv.kernel * conv.kernel;
    layer.gemm.n = conv.out_channels;
    layer.gemm.input_reuse = conv.kernel * conv.kernel;
    return layer;
}

LayerSpec
makeLinearLayer(const std::string& name, std::size_t time_steps,
                std::size_t tokens, std::size_t in_features,
                std::size_t out_features)
{
    LayerSpec layer;
    layer.name = name;
    layer.type = LayerType::kLinear;
    layer.time_steps = time_steps;
    layer.gemm.m = time_steps * tokens;
    layer.gemm.k = in_features;
    layer.gemm.n = out_features;
    return layer;
}

} // namespace prosperity
