/**
 * @file
 * Workloads: (model, dataset) pairs and their activation statistics.
 *
 * A Workload names its model and dataset by *registry key* (see
 * snn/model_registry.h) — the same open, string-keyed currency the
 * accelerator axis uses — so the paper's 16 end-to-end pairs (Fig. 8)
 * are just the checked-in starting set, not the API's ceiling: any
 * registered model (built-in, programmatic, or loaded from a JSON
 * ModelDesc) runs on any registered dataset.
 *
 * The original artifact ships recorded spike matrices from trained
 * PyTorch models; this repository substitutes calibrated synthetic
 * activations (see DESIGN.md): each workload carries an
 * ActivationProfile whose bit density matches the paper's reported
 * values and whose correlation structure is tuned so product density
 * lands in the reported range. makeWorkload() attaches the calibrated
 * profile from the model registry's table.
 */

#ifndef PROSPERITY_SNN_WORKLOAD_H
#define PROSPERITY_SNN_WORKLOAD_H

#include <string>
#include <vector>

#include "snn/activation_profile.h"
#include "snn/model_registry.h"
#include "snn/models.h"

namespace prosperity {

/** One evaluated (model, dataset) pair. */
struct Workload
{
    std::string model;   ///< ModelRegistry key (canonical lowercase)
    std::string dataset; ///< DatasetRegistry key (canonical lowercase)
    ActivationProfile profile;

    /** Display label, e.g. "VGG16/CIFAR100" (registry display names). */
    std::string name() const;

    /** Display name of the model ("VGG16"). */
    std::string modelName() const;

    /** Display name of the dataset ("CIFAR100"). */
    std::string datasetName() const;

    /** Build the lowered model for this dataset's input geometry. */
    ModelSpec buildModel() const;
};

/** Same (model, dataset) keys with the same activation profile. */
bool operator==(const Workload& a, const Workload& b);
inline bool operator!=(const Workload& a, const Workload& b)
{
    return !(a == b);
}

/**
 * Construct a workload with its calibrated activation profile. Names
 * resolve case-insensitively against the registries; throws
 * std::invalid_argument listing the registered names on a miss.
 */
Workload makeWorkload(const std::string& model,
                      const std::string& dataset);

/** The 16 pairs of the end-to-end evaluation (Fig. 8), paper order. */
std::vector<Workload> fig8Suite();

/** The density-study suite (Fig. 11): Fig. 8 pairs plus VGG-9 and LN5. */
std::vector<Workload> fig11Suite();

} // namespace prosperity

#endif // PROSPERITY_SNN_WORKLOAD_H
