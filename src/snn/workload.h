/**
 * @file
 * Workloads: (model, dataset) pairs and their activation statistics.
 *
 * The paper evaluates 16 model/dataset pairs end to end (Fig. 8) and a
 * wider set for the density study (Fig. 11). The original artifact ships
 * recorded spike matrices from trained PyTorch models; this repository
 * substitutes calibrated synthetic activations (see DESIGN.md): each
 * workload carries an ActivationProfile whose bit density matches the
 * paper's reported values and whose correlation structure is tuned so
 * product density lands in the reported range.
 */

#ifndef PROSPERITY_SNN_WORKLOAD_H
#define PROSPERITY_SNN_WORKLOAD_H

#include <optional>
#include <string>
#include <vector>

#include "snn/models.h"

namespace prosperity {

/** Model architecture identifiers. */
enum class ModelId {
    kVgg16,
    kVgg9,
    kResNet18,
    kLeNet5,
    kSpikformer,
    kSdt,
    kSpikeBert,
    kSpikingBert,
};

/** Dataset identifiers used in the evaluation. */
enum class DatasetId {
    kCifar10,
    kCifar100,
    kCifar10Dvs,
    kMnist,
    kSst2,
    kSst5,
    kMr,
    kQqp,
    kMnli,
};

const char* modelName(ModelId id);
const char* datasetName(DatasetId id);

/** Inverse of modelName/datasetName (exact match, case-sensitive);
 *  nullopt for unknown names. */
std::optional<ModelId> modelFromName(const std::string& name);
std::optional<DatasetId> datasetFromName(const std::string& name);

/** Every ModelId / DatasetId, in declaration order. */
const std::vector<ModelId>& allModels();
const std::vector<DatasetId>& allDatasets();

/** Input geometry a dataset imposes on a model. */
InputConfig datasetInput(DatasetId id);

/**
 * Statistical profile of a workload's spike activations; drives the
 * synthetic generator in src/gen.
 *
 * - `bit_density`: target fraction of 1-bits (Fig. 11 bit density).
 * - `cluster_fraction`: fraction of rows drawn near a shared base
 *   pattern (models the combinatorial similarity real SNN activations
 *   exhibit; the remainder is i.i.d. Bernoulli).
 * - `bank_size`: number of distinct base patterns per 256-row window.
 * - `subset_drop_prob`: probability each 1-bit of a base pattern is
 *   dropped when a clustered row is emitted (creates proper-subset /
 *   partial-match structure).
 * - `temporal_repeat`: probability a row is an exact copy of the same
 *   position in the previous time step (creates exact-match structure).
 * - `union_prob`: probability a clustered row is the union of prefixes
 *   from *two* banks (a neuron population driven by two feature
 *   groups) — the structure that makes a second prefix useful
 *   (Table II).
 * - `noise_insert_prob`: per-position probability of a stray spike on
 *   top of a clustered row. Stray spikes break subset relations over
 *   wide column windows, which is why ProSparsity's tile width k has a
 *   sweet spot (Fig. 7 right).
 */
struct ActivationProfile
{
    double bit_density = 0.2;
    double cluster_fraction = 0.6;
    std::size_t bank_size = 24;
    double subset_drop_prob = 0.25;
    double temporal_repeat = 0.3;
    double union_prob = 0.12;
    double noise_insert_prob = 0.003;
};

bool operator==(const ActivationProfile& a, const ActivationProfile& b);
inline bool operator!=(const ActivationProfile& a,
                       const ActivationProfile& b)
{
    return !(a == b);
}

/** One evaluated (model, dataset) pair. */
struct Workload
{
    ModelId model_id;
    DatasetId dataset_id;
    ActivationProfile profile;

    std::string name() const;

    /** Build the lowered model for this dataset's input geometry. */
    ModelSpec buildModel() const;
};

/** Same (model, dataset) pair with the same activation profile. */
bool operator==(const Workload& a, const Workload& b);
inline bool operator!=(const Workload& a, const Workload& b)
{
    return !(a == b);
}

/** Construct a workload with its calibrated activation profile. */
Workload makeWorkload(ModelId model, DatasetId dataset);

/** The 16 pairs of the end-to-end evaluation (Fig. 8), paper order. */
std::vector<Workload> fig8Suite();

/** The density-study suite (Fig. 11): Fig. 8 pairs plus VGG-9 and LN5. */
std::vector<Workload> fig11Suite();

} // namespace prosperity

#endif // PROSPERITY_SNN_WORKLOAD_H
