/**
 * @file
 * Model zoo: the SNN architectures evaluated in the paper.
 *
 * Spiking CNNs: VGG-16, VGG-9, ResNet-18, LeNet-5 (the paper's "LN5").
 * Spiking transformers: Spikformer, Spike-Driven Transformer (SDT),
 * SpikeBERT, SpikingBERT. Layer dimensions follow each model's default
 * published configuration (see the per-builder comments); time steps and
 * input geometry come from the dataset (Sec. VII-A: "we use the default
 * configuration for number of layers, dimensions, and time steps").
 */

#ifndef PROSPERITY_SNN_MODELS_H
#define PROSPERITY_SNN_MODELS_H

#include <cstddef>

#include "snn/layer.h"

namespace prosperity {

/** Input geometry + time steps a model is instantiated for. */
struct InputConfig
{
    std::size_t time_steps = 4;   ///< T
    std::size_t channels = 3;     ///< image channels (2 for DVS)
    std::size_t height = 32;      ///< image height
    std::size_t width = 32;       ///< image width
    std::size_t seq_len = 128;    ///< tokens (NLP models)
    std::size_t num_classes = 10;

    bool operator==(const InputConfig&) const = default;
};

/**
 * Append one transformer encoder block's layers: Q/K/V projections,
 * QxK^T, (softmax,) score x V, output projection, (layernorm,) MLP.
 * Shared by the C++ transformer builders and the declarative model
 * lowering (ModelDesc) so both produce identical LayerSpecs.
 */
void appendEncoderBlock(ModelSpec& model, const std::string& prefix,
                        std::size_t t, std::size_t seq_len,
                        std::size_t dim, std::size_t mlp_hidden,
                        bool softmax_attention);

/** VGG-16 with the standard CIFAR head (two FC layers). */
ModelSpec buildVgg16(const InputConfig& input);

/** VGG-9: 7 conv + 2 FC CIFAR variant. */
ModelSpec buildVgg9(const InputConfig& input);

/** ResNet-18 with CIFAR stem (3x3 conv1, no initial pool). */
ModelSpec buildResNet18(const InputConfig& input);

/** LeNet-5 ("LN5"), the classic MNIST network, spiking version. */
ModelSpec buildLeNet5(const InputConfig& input);

/**
 * AlexNet (CIFAR variant): 5 conv + 3 FC. Used by the LoAS dual-side
 * sparsity study (Table V).
 */
ModelSpec buildAlexNet(const InputConfig& input);

/**
 * ResNet-19: the 18-layer CIFAR ResNet with a widened 3-stage layout
 * (3/3/2 blocks at 128/256/512 channels) common in SNN work and used
 * by LoAS (Table V).
 */
ModelSpec buildResNet19(const InputConfig& input);

/**
 * Spikformer-4-384: spiking patch splitting (SPS) conv stem to 8x8
 * patches, 4 encoder blocks, dim 384, MLP ratio 4, spiking self
 * attention (no softmax — Spikformer's SSA is softmax-free).
 */
ModelSpec buildSpikformer(const InputConfig& input);

/**
 * Spike-Driven Transformer (SDT-2-512): conv stem, 2 encoder blocks,
 * dim 512, MLP ratio 4, spike-driven self attention.
 */
ModelSpec buildSdt(const InputConfig& input);

/**
 * SpikeBERT: 12 transformer encoder blocks, hidden 768, intermediate
 * 3072, softmax attention + layer normalization handled by the SFU
 * (Sec. IV "Support for Transformers").
 */
ModelSpec buildSpikeBert(const InputConfig& input);

/**
 * SpikingBERT: 4 encoder blocks, hidden 768, intermediate 3072
 * (distilled BERT student with implicit-differentiation training).
 */
ModelSpec buildSpikingBert(const InputConfig& input);

} // namespace prosperity

#endif // PROSPERITY_SNN_MODELS_H
