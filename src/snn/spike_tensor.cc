#include "spike_tensor.h"

#include "sim/logging.h"

namespace prosperity {

SpikeTensor::SpikeTensor(std::size_t time_steps, std::size_t channels,
                         std::size_t height, std::size_t width)
    : t_(time_steps), c_(channels), h_(height), w_(width),
      bits_(time_steps, channels * height * width)
{
}

std::size_t
SpikeTensor::index(std::size_t c, std::size_t y, std::size_t x) const
{
    PROSPERITY_ASSERT(c < c_ && y < h_ && x < w_,
                      "spike tensor index out of range");
    return (c * h_ + y) * w_ + x;
}

bool
SpikeTensor::test(std::size_t t, std::size_t c, std::size_t y,
                  std::size_t x) const
{
    return bits_.test(t, index(c, y, x));
}

void
SpikeTensor::set(std::size_t t, std::size_t c, std::size_t y, std::size_t x,
                 bool v)
{
    bits_.set(t, index(c, y, x), v);
}

void
SpikeTensor::randomize(Rng& rng, double density)
{
    bits_.randomize(rng, density);
}

BitMatrix
SpikeTensor::im2col(const ConvParams& conv) const
{
    PROSPERITY_ASSERT(conv.in_channels == c_,
                      "conv channel count mismatch");
    const std::size_t oh = conv.outDim(h_);
    const std::size_t ow = conv.outDim(w_);
    const std::size_t cols = c_ * conv.kernel * conv.kernel;
    BitMatrix out(t_ * oh * ow, cols);

    for (std::size_t t = 0; t < t_; ++t) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
                const std::size_t row = (t * oh + oy) * ow + ox;
                for (std::size_t c = 0; c < c_; ++c) {
                    for (std::size_t ky = 0; ky < conv.kernel; ++ky) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy * conv.stride +
                                                        ky) -
                            static_cast<std::ptrdiff_t>(conv.padding);
                        if (iy < 0 ||
                            iy >= static_cast<std::ptrdiff_t>(h_))
                            continue;
                        for (std::size_t kx = 0; kx < conv.kernel; ++kx) {
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(
                                    ox * conv.stride + kx) -
                                static_cast<std::ptrdiff_t>(conv.padding);
                            if (ix < 0 ||
                                ix >= static_cast<std::ptrdiff_t>(w_))
                                continue;
                            if (test(t, c, static_cast<std::size_t>(iy),
                                     static_cast<std::size_t>(ix))) {
                                const std::size_t col =
                                    (c * conv.kernel + ky) * conv.kernel +
                                    kx;
                                out.set(row, col);
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

BitMatrix
SpikeTensor::flattenPixels() const
{
    BitMatrix out(t_ * h_ * w_, c_);
    for (std::size_t t = 0; t < t_; ++t)
        for (std::size_t c = 0; c < c_; ++c)
            for (std::size_t y = 0; y < h_; ++y)
                for (std::size_t x = 0; x < w_; ++x)
                    if (test(t, c, y, x))
                        out.set((t * h_ + y) * w_ + x, c);
    return out;
}

} // namespace prosperity
