/**
 * @file
 * Functional spiking-CNN execution.
 *
 * Chains conv -> pool -> linear layers with LIF neurons into a complete
 * forward pass over T time steps, executing every spiking GeMM either
 * through the ProSparsity pipeline or through a dense reference. Used
 * by tests and examples to demonstrate end-to-end losslessness on a
 * whole network (not just a single GeMM), and to produce realistic
 * multi-layer activation statistics.
 */

#ifndef PROSPERITY_SNN_FUNCTIONAL_NETWORK_H
#define PROSPERITY_SNN_FUNCTIONAL_NETWORK_H

#include <string>
#include <vector>

#include "bitmatrix/dense_matrix.h"
#include "snn/neuron.h"
#include "snn/spike_tensor.h"

namespace prosperity {

/** Execution backend for the functional forward pass. */
enum class ExecutionMode {
    kProSparsity, ///< prefix-reusing ProductGemm (the paper's pipeline)
    kDense,       ///< plain accumulation reference
};

/** A runnable spiking CNN assembled layer by layer. */
class FunctionalSnn
{
  public:
    /**
     * @param lif Shared LIF parameters for every hidden layer.
     */
    explicit FunctionalSnn(LifParams lif = {}) : lif_(lif) {}

    /**
     * Append a convolution; weights are laid out rows = (c, ky, kx),
     * cols = out channel — the im2col order.
     */
    void addConv(const std::string& name, const ConvParams& conv,
                 WeightMatrix weights);

    /** Append a 2x2 max pool (OR over the window on binary spikes). */
    void addMaxPool(const std::string& name);

    /** Append a fully connected layer on flattened features. */
    void addLinear(const std::string& name, WeightMatrix weights);

    std::size_t numLayers() const { return layers_.size(); }

    /** Result of one forward pass. */
    struct ForwardResult
    {
        /** Accumulated output currents of the last layer, summed over
         *  time steps: the classification logits. */
        std::vector<std::int64_t> logits;

        /** Per-layer activation density after the neuron array. */
        std::vector<double> layer_densities;

        double dense_ops = 0.0;
        double bit_ops = 0.0;
        double product_ops = 0.0;
    };

    /** Run the network on a spike-coded input. */
    ForwardResult forward(const SpikeTensor& input,
                          ExecutionMode mode) const;

  private:
    enum class Kind { kConv, kPool, kLinear };

    struct Layer
    {
        Kind kind;
        std::string name;
        ConvParams conv{};
        WeightMatrix weights;
    };

    LifParams lif_;
    std::vector<Layer> layers_;
};

} // namespace prosperity

#endif // PROSPERITY_SNN_FUNCTIONAL_NETWORK_H
