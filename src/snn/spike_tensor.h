/**
 * @file
 * Multi-time-step spike tensors and the im2col lowering.
 *
 * A SpikeTensor holds the binary activation of a spiking CNN layer:
 * T time steps of a (C, H, W) feature map. Spiking convolution is
 * lowered to spiking GeMM through im2col (Sec. II-B of the paper):
 * the result is a BitMatrix with T * outH * outW rows and C * kh * kw
 * columns that multiplies the flattened kernel matrix.
 */

#ifndef PROSPERITY_SNN_SPIKE_TENSOR_H
#define PROSPERITY_SNN_SPIKE_TENSOR_H

#include <cstddef>

#include "bitmatrix/bit_matrix.h"
#include "sim/rng.h"

namespace prosperity {

/** Convolution geometry. */
struct ConvParams
{
    std::size_t in_channels = 1;
    std::size_t out_channels = 1;
    std::size_t kernel = 3;
    std::size_t stride = 1;
    std::size_t padding = 1;

    /** Output spatial size for an input of `in` pixels along one axis. */
    std::size_t
    outDim(std::size_t in) const
    {
        return (in + 2 * padding - kernel) / stride + 1;
    }
};

/** Binary activation tensor over T time steps of a (C, H, W) map. */
class SpikeTensor
{
  public:
    SpikeTensor() = default;

    SpikeTensor(std::size_t time_steps, std::size_t channels,
                std::size_t height, std::size_t width);

    std::size_t timeSteps() const { return t_; }
    std::size_t channels() const { return c_; }
    std::size_t height() const { return h_; }
    std::size_t width() const { return w_; }

    bool test(std::size_t t, std::size_t c, std::size_t y,
              std::size_t x) const;
    void set(std::size_t t, std::size_t c, std::size_t y, std::size_t x,
             bool v = true);

    /** Fraction of set bits. */
    double density() const { return bits_.density(); }

    /** Fill with Bernoulli(p) spikes. */
    void randomize(Rng& rng, double density);

    /**
     * im2col lowering: rows are (t, oy, ox) output positions in row-major
     * order; columns are (c, ky, kx) kernel taps. Out-of-bounds taps
     * (padding) contribute 0 bits.
     */
    BitMatrix im2col(const ConvParams& conv) const;

    /**
     * Flatten to the (T * H * W) x C spiking-GeMM input of a 1x1
     * convolution / per-pixel linear layer.
     */
    BitMatrix flattenPixels() const;

    /** Backing bit matrix: (T) rows x (C*H*W) columns. */
    const BitMatrix& bits() const { return bits_; }

  private:
    std::size_t index(std::size_t c, std::size_t y, std::size_t x) const;

    std::size_t t_ = 0, c_ = 0, h_ = 0, w_ = 0;
    BitMatrix bits_; // T rows, C*H*W cols
};

} // namespace prosperity

#endif // PROSPERITY_SNN_SPIKE_TENSOR_H
