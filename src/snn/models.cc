#include "models.h"

#include <algorithm>
#include <vector>

#include "sim/logging.h"

namespace prosperity {

namespace {

/** Running CNN builder state: current feature-map geometry. */
struct CnnState
{
    std::size_t h = 0, w = 0, c = 0;
    std::size_t t = 4;
    ModelSpec model{};

    void
    conv(const std::string& name, std::size_t out_c, std::size_t kernel,
         std::size_t stride, std::size_t padding, bool spiking = true)
    {
        ConvParams p;
        p.in_channels = c;
        p.out_channels = out_c;
        p.kernel = kernel;
        p.stride = stride;
        p.padding = padding;
        LayerSpec layer = makeConvLayer(name, t, h, w, p);
        layer.spiking = spiking;
        model.layers.push_back(layer);
        h = p.outDim(h);
        w = p.outDim(w);
        c = out_c;
    }

    void
    pool(const std::string& name, std::size_t factor = 2)
    {
        LayerSpec layer;
        layer.name = name;
        layer.type = LayerType::kPool;
        layer.time_steps = t;
        model.layers.push_back(layer);
        h = std::max<std::size_t>(1, h / factor);
        w = std::max<std::size_t>(1, w / factor);
    }

    void
    linear(const std::string& name, std::size_t out_features)
    {
        const std::size_t in_features = c * h * w;
        model.layers.push_back(
            makeLinearLayer(name, t, 1, in_features, out_features));
        c = out_features;
        h = w = 1;
    }
};

} // namespace

void
appendEncoderBlock(ModelSpec& model, const std::string& prefix,
                   std::size_t t, std::size_t seq_len, std::size_t dim,
                   std::size_t mlp_hidden, bool softmax_attention)
{
    auto linear = [&](const std::string& name, std::size_t in,
                      std::size_t out) {
        model.layers.push_back(
            makeLinearLayer(prefix + "." + name, t, seq_len, in, out));
    };
    linear("q_proj", dim, dim);
    linear("k_proj", dim, dim);
    linear("v_proj", dim, dim);

    // Q x K^T: binary query spikes against binary key spikes -> spiking
    // GeMM of shape (T*L, dim, L) aggregated across heads.
    LayerSpec qk;
    qk.name = prefix + ".attn_qk";
    qk.type = LayerType::kAttentionQK;
    qk.time_steps = t;
    qk.gemm = {t * seq_len, dim, seq_len};
    model.layers.push_back(qk);

    if (softmax_attention) {
        LayerSpec sm;
        sm.name = prefix + ".softmax";
        sm.type = LayerType::kSoftmax;
        sm.time_steps = t;
        sm.spiking = false;
        sm.sfu_ops = static_cast<double>(t) * seq_len * seq_len;
        model.layers.push_back(sm);
    }

    // Score x V: (T*L, L, dim). With softmax-free spiking attention the
    // score matrix is binary (a spiking GeMM); with softmax attention
    // the scores are real-valued, so every design runs it densely.
    LayerSpec sv;
    sv.name = prefix + ".attn_sv";
    sv.type = LayerType::kAttentionSV;
    sv.time_steps = t;
    sv.gemm = {t * seq_len, seq_len, dim};
    sv.spiking = !softmax_attention;
    model.layers.push_back(sv);

    linear("out_proj", dim, dim);

    if (softmax_attention) {
        LayerSpec ln;
        ln.name = prefix + ".layernorm1";
        ln.type = LayerType::kLayerNorm;
        ln.time_steps = t;
        ln.spiking = false;
        ln.sfu_ops = static_cast<double>(t) * seq_len * dim;
        model.layers.push_back(ln);
    }

    linear("mlp.fc1", dim, mlp_hidden);
    linear("mlp.fc2", mlp_hidden, dim);

    if (softmax_attention) {
        LayerSpec ln;
        ln.name = prefix + ".layernorm2";
        ln.type = LayerType::kLayerNorm;
        ln.time_steps = t;
        ln.spiking = false;
        ln.sfu_ops = static_cast<double>(t) * seq_len * dim;
        model.layers.push_back(ln);
    }
}

ModelSpec
buildVgg16(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "VGG16";
    s.model.time_steps = input.time_steps;

    const std::vector<std::vector<std::size_t>> stages = {
        {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512},
        {512, 512, 512}};
    bool first = true;
    for (std::size_t stage = 0; stage < stages.size(); ++stage) {
        for (std::size_t i = 0; i < stages[stage].size(); ++i) {
            s.conv("conv" + std::to_string(stage + 1) + "_" +
                       std::to_string(i + 1),
                   stages[stage][i], 3, 1, 1, !first);
            first = false;
        }
        s.pool("pool" + std::to_string(stage + 1));
    }
    s.linear("fc1", 512);
    s.linear("fc2", input.num_classes);
    return s.model;
}

ModelSpec
buildVgg9(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "VGG9";
    s.model.time_steps = input.time_steps;

    s.conv("conv1_1", 64, 3, 1, 1, /*spiking=*/false);
    s.conv("conv1_2", 64, 3, 1, 1);
    s.pool("pool1");
    s.conv("conv2_1", 128, 3, 1, 1);
    s.conv("conv2_2", 128, 3, 1, 1);
    s.pool("pool2");
    s.conv("conv3_1", 256, 3, 1, 1);
    s.conv("conv3_2", 256, 3, 1, 1);
    s.conv("conv3_3", 256, 3, 1, 1);
    s.pool("pool3");
    s.linear("fc1", 1024);
    s.linear("fc2", input.num_classes);
    return s.model;
}

ModelSpec
buildResNet18(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "ResNet18";
    s.model.time_steps = input.time_steps;

    s.conv("conv1", 64, 3, 1, 1, /*spiking=*/false);

    const std::size_t widths[4] = {64, 128, 256, 512};
    for (std::size_t stage = 0; stage < 4; ++stage) {
        for (std::size_t block = 0; block < 2; ++block) {
            const bool down = stage > 0 && block == 0;
            const std::string prefix = "layer" + std::to_string(stage + 1) +
                                       "." + std::to_string(block);
            if (down) {
                // 1x1 stride-2 downsample on the residual path.
                const std::size_t in_c = s.c;
                const std::size_t in_h = s.h, in_w = s.w;
                s.conv(prefix + ".conv1", widths[stage], 3, 2, 1);
                // Shortcut conv shares the block's input geometry.
                ConvParams sc;
                sc.in_channels = in_c;
                sc.out_channels = widths[stage];
                sc.kernel = 1;
                sc.stride = 2;
                sc.padding = 0;
                s.model.layers.push_back(makeConvLayer(
                    prefix + ".shortcut", s.t, in_h, in_w, sc));
            } else {
                s.conv(prefix + ".conv1", widths[stage], 3, 1, 1);
            }
            s.conv(prefix + ".conv2", widths[stage], 3, 1, 1);
        }
    }
    s.pool("avgpool", s.h); // global average pool
    s.linear("fc", input.num_classes);
    return s.model;
}

ModelSpec
buildLeNet5(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "LeNet5";
    s.model.time_steps = input.time_steps;

    s.conv("conv1", 6, 5, 1, 2, /*spiking=*/false);
    s.pool("pool1");
    s.conv("conv2", 16, 5, 1, 0);
    s.pool("pool2");
    s.linear("fc1", 120);
    s.linear("fc2", 84);
    s.linear("fc3", input.num_classes);
    return s.model;
}

ModelSpec
buildAlexNet(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "AlexNet";
    s.model.time_steps = input.time_steps;

    s.conv("conv1", 64, 3, 1, 1, /*spiking=*/false);
    s.pool("pool1");
    s.conv("conv2", 192, 3, 1, 1);
    s.pool("pool2");
    s.conv("conv3", 384, 3, 1, 1);
    s.conv("conv4", 256, 3, 1, 1);
    s.conv("conv5", 256, 3, 1, 1);
    s.pool("pool3");
    s.linear("fc1", 1024);
    s.linear("fc2", 1024);
    s.linear("fc3", input.num_classes);
    return s.model;
}

ModelSpec
buildResNet19(const InputConfig& input)
{
    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "ResNet19";
    s.model.time_steps = input.time_steps;

    s.conv("conv1", 128, 3, 1, 1, /*spiking=*/false);

    struct Stage { std::size_t width, blocks; };
    const Stage stages[3] = {{128, 3}, {256, 3}, {512, 2}};
    for (std::size_t stage = 0; stage < 3; ++stage) {
        for (std::size_t block = 0; block < stages[stage].blocks;
             ++block) {
            const bool down = stage > 0 && block == 0;
            const std::string prefix = "layer" + std::to_string(stage + 1) +
                                       "." + std::to_string(block);
            if (down) {
                const std::size_t in_c = s.c;
                const std::size_t in_h = s.h, in_w = s.w;
                s.conv(prefix + ".conv1", stages[stage].width, 3, 2, 1);
                ConvParams sc;
                sc.in_channels = in_c;
                sc.out_channels = stages[stage].width;
                sc.kernel = 1;
                sc.stride = 2;
                sc.padding = 0;
                s.model.layers.push_back(makeConvLayer(
                    prefix + ".shortcut", s.t, in_h, in_w, sc));
            } else {
                s.conv(prefix + ".conv1", stages[stage].width, 3, 1, 1);
            }
            s.conv(prefix + ".conv2", stages[stage].width, 3, 1, 1);
        }
    }
    s.pool("avgpool", s.h);
    s.linear("fc", input.num_classes);
    return s.model;
}

namespace {

/**
 * SPS-style conv stem: halves spatial size at each stage while ramping
 * channels up to `dim`; ends at (height/patch) x (width/patch) tokens.
 */
void
appendVitStem(CnnState& s, std::size_t dim)
{
    s.conv("sps.conv1", dim / 8, 3, 1, 1, /*spiking=*/false);
    s.pool("sps.pool1");
    s.conv("sps.conv2", dim / 4, 3, 1, 1);
    s.pool("sps.pool2");
    s.conv("sps.conv3", dim / 2, 3, 1, 1);
    s.conv("sps.conv4", dim, 3, 1, 1);
}

} // namespace

ModelSpec
buildSpikformer(const InputConfig& input)
{
    // Spikformer-4-384 (CIFAR default): patch 4 => (H/4)*(W/4) tokens.
    const std::size_t dim = 384;
    const std::size_t blocks = 4;

    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "Spikformer";
    s.model.time_steps = input.time_steps;
    appendVitStem(s, dim);

    const std::size_t seq_len = s.h * s.w;
    for (std::size_t b = 0; b < blocks; ++b)
        appendEncoderBlock(s.model, "block" + std::to_string(b),
                           input.time_steps, seq_len, dim, 4 * dim,
                           /*softmax_attention=*/false);
    s.model.layers.push_back(makeLinearLayer("head", input.time_steps, 1,
                                             dim, input.num_classes));
    return s.model;
}

ModelSpec
buildSdt(const InputConfig& input)
{
    // Spike-Driven Transformer SDT-2-512 (CIFAR default).
    const std::size_t dim = 512;
    const std::size_t blocks = 2;

    CnnState s{input.height, input.width, input.channels, input.time_steps};
    s.model.name = "SDT";
    s.model.time_steps = input.time_steps;
    appendVitStem(s, dim);

    const std::size_t seq_len = s.h * s.w;
    for (std::size_t b = 0; b < blocks; ++b)
        appendEncoderBlock(s.model, "block" + std::to_string(b),
                           input.time_steps, seq_len, dim, 4 * dim,
                           /*softmax_attention=*/false);
    s.model.layers.push_back(makeLinearLayer("head", input.time_steps, 1,
                                             dim, input.num_classes));
    return s.model;
}

ModelSpec
buildSpikeBert(const InputConfig& input)
{
    ModelSpec model;
    model.name = "SpikeBERT";
    model.time_steps = input.time_steps;
    for (std::size_t b = 0; b < 12; ++b)
        appendEncoderBlock(model, "block" + std::to_string(b),
                           input.time_steps, input.seq_len, 768, 3072,
                           /*softmax_attention=*/true);
    model.layers.push_back(makeLinearLayer("classifier", input.time_steps,
                                           1, 768, input.num_classes));
    return model;
}

ModelSpec
buildSpikingBert(const InputConfig& input)
{
    ModelSpec model;
    model.name = "SpikingBERT";
    model.time_steps = input.time_steps;
    for (std::size_t b = 0; b < 4; ++b)
        appendEncoderBlock(model, "block" + std::to_string(b),
                           input.time_steps, input.seq_len, 768, 3072,
                           /*softmax_attention=*/true);
    model.layers.push_back(makeLinearLayer("classifier", input.time_steps,
                                           1, 768, input.num_classes));
    return model;
}

} // namespace prosperity
