#include "functional_network.h"

#include <algorithm>

#include "core/product_gemm.h"
#include "sim/logging.h"

namespace prosperity {

void
FunctionalSnn::addConv(const std::string& name, const ConvParams& conv,
                       WeightMatrix weights)
{
    PROSPERITY_ASSERT(weights.rows() ==
                          conv.in_channels * conv.kernel * conv.kernel,
                      "conv weight rows must be inC * k^2");
    PROSPERITY_ASSERT(weights.cols() == conv.out_channels,
                      "conv weight cols must be outC");
    layers_.push_back(Layer{Kind::kConv, name, conv, std::move(weights)});
}

void
FunctionalSnn::addMaxPool(const std::string& name)
{
    layers_.push_back(Layer{Kind::kPool, name, ConvParams{}, {}});
}

void
FunctionalSnn::addLinear(const std::string& name, WeightMatrix weights)
{
    layers_.push_back(
        Layer{Kind::kLinear, name, ConvParams{}, std::move(weights)});
}

namespace {

/** GeMM through the selected backend, with op accounting. */
OutputMatrix
runGemm(const BitMatrix& spikes, const WeightMatrix& weights,
        ExecutionMode mode, FunctionalSnn::ForwardResult& acc)
{
    acc.dense_ops += static_cast<double>(spikes.rows()) *
                     static_cast<double>(spikes.cols()) *
                     static_cast<double>(weights.cols());
    if (mode == ExecutionMode::kProSparsity) {
        const ProductGemm gemm;
        ProductGemm::Result r = gemm.multiply(spikes, weights);
        acc.bit_ops += r.bit_ops;
        acc.product_ops += r.product_ops;
        return std::move(r.output);
    }
    acc.bit_ops += static_cast<double>(spikes.popcount()) *
                   static_cast<double>(weights.cols());
    acc.product_ops = acc.bit_ops; // dense reference reuses nothing
    return ProductGemm::referenceMultiply(spikes, weights);
}

/**
 * Run LIF neurons over a (T * positions) x channels current matrix:
 * one independent neuron per (position, channel), membrane evolving
 * across the T time steps. Returns spikes in the same layout.
 */
BitMatrix
runLifGrid(const OutputMatrix& currents, std::size_t time_steps,
           const LifParams& params)
{
    PROSPERITY_ASSERT(currents.rows() % time_steps == 0,
                      "current rows must be divisible by T");
    const std::size_t positions = currents.rows() / time_steps;
    const std::size_t channels = currents.cols();
    BitMatrix spikes(currents.rows(), channels);

    for (std::size_t p = 0; p < positions; ++p) {
        LifArray neurons(channels, params);
        for (std::size_t t = 0; t < time_steps; ++t) {
            const std::size_t row = t * positions + p;
            const BitVector fired =
                neurons.step(currents.rowPtr(row), channels);
            spikes.row(row) = fired;
        }
    }
    return spikes;
}

/** Rebuild a SpikeTensor from (T * positions) x channels spike rows. */
SpikeTensor
toTensor(const BitMatrix& spikes, std::size_t time_steps,
         std::size_t channels, std::size_t height, std::size_t width)
{
    SpikeTensor out(time_steps, channels, height, width);
    const std::size_t positions = height * width;
    for (std::size_t t = 0; t < time_steps; ++t)
        for (std::size_t p = 0; p < positions; ++p) {
            const BitVector& row = spikes.row(t * positions + p);
            for (std::size_t c = row.findFirst(); c < channels;
                 c = row.findNext(c))
                out.set(t, c, p / width, p % width, true);
        }
    return out;
}

/** 2x2 max pool on binary spikes: OR over each window. */
SpikeTensor
maxPool2x2(const SpikeTensor& in)
{
    const std::size_t oh = std::max<std::size_t>(1, in.height() / 2);
    const std::size_t ow = std::max<std::size_t>(1, in.width() / 2);
    SpikeTensor out(in.timeSteps(), in.channels(), oh, ow);
    for (std::size_t t = 0; t < in.timeSteps(); ++t)
        for (std::size_t c = 0; c < in.channels(); ++c)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    bool any = false;
                    for (std::size_t dy = 0; dy < 2 && !any; ++dy)
                        for (std::size_t dx = 0; dx < 2 && !any; ++dx) {
                            const std::size_t iy = 2 * y + dy;
                            const std::size_t ix = 2 * x + dx;
                            if (iy < in.height() && ix < in.width())
                                any = in.test(t, c, iy, ix);
                        }
                    if (any)
                        out.set(t, c, y, x, true);
                }
    return out;
}

} // namespace

FunctionalSnn::ForwardResult
FunctionalSnn::forward(const SpikeTensor& input, ExecutionMode mode) const
{
    PROSPERITY_ASSERT(!layers_.empty(), "network has no layers");
    PROSPERITY_ASSERT(layers_.back().kind == Kind::kLinear,
                      "last layer must be a classifier linear");

    ForwardResult result;
    SpikeTensor tensor = input;
    const std::size_t T = input.timeSteps();
    OutputMatrix last_currents;

    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const Layer& layer = layers_[i];
        const bool is_last = i + 1 == layers_.size();

        switch (layer.kind) {
          case Kind::kConv: {
            const BitMatrix cols = tensor.im2col(layer.conv);
            const OutputMatrix currents =
                runGemm(cols, layer.weights, mode, result);
            const std::size_t oh = layer.conv.outDim(tensor.height());
            const std::size_t ow = layer.conv.outDim(tensor.width());
            const BitMatrix spikes = runLifGrid(currents, T, lif_);
            tensor = toTensor(spikes, T, layer.conv.out_channels, oh, ow);
            break;
          }
          case Kind::kPool:
            tensor = maxPool2x2(tensor);
            break;
          case Kind::kLinear: {
            // Flatten: T rows of C*H*W features.
            const BitMatrix& flat = tensor.bits();
            PROSPERITY_ASSERT(flat.cols() == layer.weights.rows(),
                              "linear weight rows must match features");
            const OutputMatrix currents =
                runGemm(flat, layer.weights, mode, result);
            if (is_last) {
                last_currents = currents;
            } else {
                const BitMatrix spikes = runLifGrid(currents, T, lif_);
                tensor = toTensor(spikes, T, currents.cols(), 1, 1);
            }
            break;
          }
        }
        result.layer_densities.push_back(tensor.density());
    }

    // Rate-style readout: sum the classifier currents over time steps.
    result.logits.assign(last_currents.cols(), 0);
    for (std::size_t t = 0; t < last_currents.rows(); ++t)
        for (std::size_t c = 0; c < last_currents.cols(); ++c)
            result.logits[c] += last_currents.at(t, c);
    return result;
}

} // namespace prosperity
