/**
 * @file
 * Spiking neuron models.
 *
 * The functional inference path uses the leaky integrate-and-fire (LIF)
 * neuron (Sec. II-A): each time step integrates the input current into
 * the membrane potential, applies leak, and fires a spike when the
 * potential crosses the threshold. The FS ("few spikes") neuron of
 * Stellar (Stoeckl & Maass) is modeled for the Fig. 11 density
 * comparison: it re-codes an activation into at most `max_spikes`
 * spikes using binary-weighted temporal coding.
 */

#ifndef PROSPERITY_SNN_NEURON_H
#define PROSPERITY_SNN_NEURON_H

#include <cstdint>
#include <vector>

#include "bitmatrix/bit_matrix.h"
#include "bitmatrix/dense_matrix.h"

namespace prosperity {

/** LIF dynamics parameters. */
struct LifParams
{
    double leak = 0.5;        ///< membrane decay factor per step (1/tau)
    double threshold = 64.0;  ///< firing threshold (integer-current scale)
    bool soft_reset = true;   ///< subtract threshold instead of zeroing
};

/**
 * A bank of LIF neurons evaluated functionally over time steps.
 *
 * Currents arrive as an integer matrix of shape (T, N): row t holds the
 * accumulated input current of every neuron at time step t (the output
 * of one spiking GeMM). step()/run() produce the binary spike outputs.
 */
class LifArray
{
  public:
    LifArray(std::size_t num_neurons, LifParams params = {});

    std::size_t size() const { return potentials_.size(); }
    const LifParams& params() const { return params_; }

    /** Reset all membrane potentials to zero. */
    void reset();

    /**
     * Advance one time step with per-neuron currents; returns the spike
     * vector fired this step.
     */
    BitVector step(const std::int32_t* currents, std::size_t count);

    /**
     * Run all T time steps of `currents` (T x N) and return the (T x N)
     * spike matrix.
     */
    BitMatrix run(const OutputMatrix& currents);

    /** Current membrane potential of neuron `i` (for tests). */
    double potential(std::size_t i) const { return potentials_[i]; }

  private:
    LifParams params_;
    std::vector<double> potentials_;
};

/**
 * FS (few-spikes) neuron re-coder used by Stellar's algorithm-hardware
 * co-design. Given a non-negative activation value, the neuron emits at
 * most `max_spikes` spikes over `time_steps` steps, choosing the
 * binary-weighted steps that best approximate the activation (greedy
 * residual coding, as in the FS-conversion literature). This captures
 * the mechanism that makes Stellar's activations sparser than LIF's,
 * without re-training any model.
 */
class FsNeuron
{
  public:
    FsNeuron(std::size_t time_steps, std::size_t max_spikes = 2,
             double value_range = 1.0);

    /**
     * Encode one activation into a spike train of `time_steps` bits.
     * Step t carries weight value_range / 2^(t+1).
     */
    BitVector encode(double activation) const;

    /** Decoded value of a spike train (for error tests). */
    double decode(const BitVector& train) const;

    std::size_t timeSteps() const { return time_steps_; }
    std::size_t maxSpikes() const { return max_spikes_; }

  private:
    std::size_t time_steps_;
    std::size_t max_spikes_;
    double value_range_;
};

} // namespace prosperity

#endif // PROSPERITY_SNN_NEURON_H
