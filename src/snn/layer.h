/**
 * @file
 * SNN layer descriptors.
 *
 * A LayerSpec records the spiking-GeMM geometry of one layer after the
 * standard lowerings (im2col for convolutions, time-step unrolling for
 * everything — Sec. II of the paper). The simulator consumes these
 * descriptors; the functional path (examples/tests) executes small ones
 * end to end.
 */

#ifndef PROSPERITY_SNN_LAYER_H
#define PROSPERITY_SNN_LAYER_H

#include <optional>
#include <string>
#include <vector>

#include "bitmatrix/bit_matrix.h"
#include "snn/activation_profile.h"
#include "snn/spike_tensor.h"

namespace prosperity {

/** Kind of computation a layer performs. */
enum class LayerType {
    kConv,        ///< spiking convolution, lowered to spiking GeMM
    kLinear,      ///< fully connected / projection spiking GeMM
    kAttentionQK, ///< Q x K^T, binary x binary spiking GeMM
    kAttentionSV, ///< attention-score x V spiking-GeMM-like op
    kSoftmax,     ///< SFU elementwise (spiking BERT variants)
    kLayerNorm,   ///< SFU elementwise
    kPool,        ///< max/avg pooling (negligible compute, tracked)
};

const char* layerTypeName(LayerType type);

/** One layer of an SNN model, already lowered to GeMM geometry. */
struct LayerSpec
{
    std::string name;
    LayerType type = LayerType::kLinear;
    std::size_t time_steps = 4;

    /**
     * Spiking-GeMM geometry. For kConv this is the im2col shape:
     * m = T * outH * outW, k = inC * kernel^2, n = outC. For SFU layers
     * the shape is zero and `sfu_ops` carries the work.
     */
    GemmShape gemm{};

    /** Elementwise special-function ops (exp/div/mul) for SFU layers. */
    double sfu_ops = 0.0;

    /** Whether the left operand is a binary spike matrix. */
    bool spiking = true;

    /**
     * Activation statistics for this layer only, overriding the
     * workload-level profile (declarative models may pin a layer's
     * measured profile; see docs/WORKLOADS.md). Spike generation uses
     * the same per-(seed, layer) stream either way.
     */
    std::optional<ActivationProfile> profile_override;

    /** True for layers executed on the PPU (spiking GeMMs). */
    bool
    isSpikingGemm() const
    {
        return spiking && gemm.m > 0 &&
               (type == LayerType::kConv || type == LayerType::kLinear ||
                type == LayerType::kAttentionQK ||
                type == LayerType::kAttentionSV);
    }

    /** Dense MAC count of this layer. */
    double denseOps() const { return gemm.denseOps(); }
};

/** Field-for-field equality (declarative-model round-trip tests). */
bool operator==(const LayerSpec& a, const LayerSpec& b);
inline bool operator!=(const LayerSpec& a, const LayerSpec& b)
{
    return !(a == b);
}

/** A whole model: ordered layers plus bookkeeping. */
struct ModelSpec
{
    std::string name;
    std::size_t time_steps = 4;
    std::vector<LayerSpec> layers;

    /** Total dense ops across all GeMM layers. */
    double totalDenseOps() const;

    /** Total ops of spiking GeMM layers only (>= 98% per the paper). */
    double spikingGemmOps() const;

    /** Number of spiking-GeMM layers. */
    std::size_t numSpikingGemms() const;
};

/** Same name, time steps and layer list (field for field). */
bool operator==(const ModelSpec& a, const ModelSpec& b);
inline bool operator!=(const ModelSpec& a, const ModelSpec& b)
{
    return !(a == b);
}

/** Helpers used by the model zoo. */
LayerSpec makeConvLayer(const std::string& name, std::size_t time_steps,
                        std::size_t in_h, std::size_t in_w,
                        const ConvParams& conv);
LayerSpec makeLinearLayer(const std::string& name, std::size_t time_steps,
                          std::size_t tokens, std::size_t in_features,
                          std::size_t out_features);

} // namespace prosperity

#endif // PROSPERITY_SNN_LAYER_H
