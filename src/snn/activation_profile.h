/**
 * @file
 * ActivationProfile: the statistical description of a workload's spike
 * activations, shared by the workload layer (per-workload calibration),
 * the declarative model format (per-layer overrides) and the synthetic
 * generator in src/gen that consumes it.
 */

#ifndef PROSPERITY_SNN_ACTIVATION_PROFILE_H
#define PROSPERITY_SNN_ACTIVATION_PROFILE_H

#include <cstddef>

namespace prosperity {

/**
 * Statistical profile of a workload's spike activations; drives the
 * synthetic generator in src/gen.
 *
 * - `bit_density`: target fraction of 1-bits (Fig. 11 bit density).
 * - `cluster_fraction`: fraction of rows drawn near a shared base
 *   pattern (models the combinatorial similarity real SNN activations
 *   exhibit; the remainder is i.i.d. Bernoulli).
 * - `bank_size`: number of distinct base patterns per 256-row window.
 * - `subset_drop_prob`: probability each 1-bit of a base pattern is
 *   dropped when a clustered row is emitted (creates proper-subset /
 *   partial-match structure).
 * - `temporal_repeat`: probability a row is an exact copy of the same
 *   position in the previous time step (creates exact-match structure).
 * - `union_prob`: probability a clustered row is the union of prefixes
 *   from *two* banks (a neuron population driven by two feature
 *   groups) — the structure that makes a second prefix useful
 *   (Table II).
 * - `noise_insert_prob`: per-position probability of a stray spike on
 *   top of a clustered row. Stray spikes break subset relations over
 *   wide column windows, which is why ProSparsity's tile width k has a
 *   sweet spot (Fig. 7 right).
 */
struct ActivationProfile
{
    double bit_density = 0.2;
    double cluster_fraction = 0.6;
    std::size_t bank_size = 24;
    double subset_drop_prob = 0.25;
    double temporal_repeat = 0.3;
    double union_prob = 0.12;
    double noise_insert_prob = 0.003;
};

bool operator==(const ActivationProfile& a, const ActivationProfile& b);
inline bool operator!=(const ActivationProfile& a,
                       const ActivationProfile& b)
{
    return !(a == b);
}

} // namespace prosperity

#endif // PROSPERITY_SNN_ACTIVATION_PROFILE_H
