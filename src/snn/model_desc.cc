#include "model_desc.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json_schema.h"

namespace prosperity {

using json::expectOnlyKeys;
using json::optionalBool;
using json::optionalSize;
using json::optionalString;
using json::requireArray;
using json::requireNumberValue;
using json::requireObject;
using json::requireSizeValue;
using json::requireString;
using json::schemaError;

std::size_t
SymbolicSize::resolve(const InputConfig& input) const
{
    if (symbol.empty())
        return value;
    if (symbol == "num_classes")
        return input.num_classes;
    if (symbol == "seq_len")
        return input.seq_len;
    throw std::invalid_argument("unknown symbolic size \"" + symbol +
                                "\" (accepted: num_classes, seq_len)");
}

InputConfig
ModelDesc::defaultInput() const
{
    return input.value_or(InputConfig{});
}

ModelSpec
ModelDesc::lower(const InputConfig& in) const
{
    ModelSpec model;
    model.name = name;
    model.time_steps = in.time_steps;
    const std::size_t t = in.time_steps;
    std::size_t h = in.height, w = in.width, c = in.channels;
    // Checkpoint register for residual shortcuts (see header comment).
    std::size_t cp_h = h, cp_w = w, cp_c = c;
    bool spatial = false; // any conv/pool has run

    const auto fail = [this](const std::string& layer,
                             const std::string& message) -> void {
        throw std::invalid_argument("model \"" + name + "\": layer \"" +
                                    layer + "\": " + message);
    };

    for (const LayerDesc& entry : layers) {
        const std::size_t first = model.layers.size();
        if (const ConvDesc* conv = std::get_if<ConvDesc>(&entry.op)) {
            if (conv->checkpoint) {
                cp_c = c;
                cp_h = h;
                cp_w = w;
            }
            ConvParams p;
            p.in_channels = conv->from_checkpoint ? cp_c : c;
            p.out_channels = conv->out_channels;
            p.kernel = conv->kernel;
            p.stride = conv->stride;
            p.padding = conv->padding;
            const std::size_t in_h = conv->from_checkpoint ? cp_h : h;
            const std::size_t in_w = conv->from_checkpoint ? cp_w : w;
            if (in_h + 2 * p.padding < p.kernel ||
                in_w + 2 * p.padding < p.kernel)
                fail(conv->name,
                     "kernel " + std::to_string(p.kernel) +
                         " does not fit the " + std::to_string(in_h) +
                         "x" + std::to_string(in_w) + " input");
            LayerSpec layer = makeConvLayer(conv->name, t, in_h, in_w, p);
            layer.spiking = conv->spiking;
            model.layers.push_back(std::move(layer));
            if (conv->advance) {
                h = p.outDim(in_h);
                w = p.outDim(in_w);
                c = conv->out_channels;
            }
            spatial = true;
        } else if (const PoolDesc* pool = std::get_if<PoolDesc>(&entry.op)) {
            LayerSpec layer;
            layer.name = pool->name;
            layer.type = LayerType::kPool;
            layer.time_steps = t;
            model.layers.push_back(std::move(layer));
            if (pool->global) {
                // Global average pool: the whole map collapses to 1x1
                // (also for non-square maps, where dividing both axes
                // by h would leave w > 1).
                h = w = 1;
            } else {
                if (pool->factor == 0)
                    fail(pool->name, "pool factor must be positive");
                h = std::max<std::size_t>(1, h / pool->factor);
                w = std::max<std::size_t>(1, w / pool->factor);
            }
            spatial = true;
        } else if (const LinearDesc* lin = std::get_if<LinearDesc>(&entry.op)) {
            std::size_t in_features = 0;
            if (lin->in_features) {
                in_features = *lin->in_features;
            } else if (spatial) {
                in_features = c * h * w;
            } else {
                fail(lin->name,
                     "implicit in_features flattens the running feature "
                     "map, but no conv/pool has produced one — give the "
                     "layer an explicit \"in_features\"");
            }
            const std::size_t out_features =
                lin->out_features.resolve(in);
            if (out_features == 0)
                fail(lin->name, "out_features must be positive");
            model.layers.push_back(makeLinearLayer(
                lin->name, t, lin->tokens, in_features, out_features));
            if (!lin->in_features) {
                // CnnState::linear: the model is a feature vector now.
                c = out_features;
                h = w = 1;
            }
        } else {
            const EncoderDesc& enc = std::get<EncoderDesc>(entry.op);
            std::size_t seq_len;
            if (enc.seq_len)
                seq_len = enc.seq_len->resolve(in);
            else if (spatial)
                seq_len = h * w;
            else
                seq_len = in.seq_len;
            if (seq_len == 0 || enc.dim == 0)
                fail(enc.prefix, "encoder needs positive seq_len and dim");
            for (std::size_t b = 0; b < enc.blocks; ++b)
                appendEncoderBlock(model, enc.prefix + std::to_string(b),
                                   t, seq_len, enc.dim, enc.mlp_hidden,
                                   enc.softmax_attention);
        }
        if (entry.profile)
            for (std::size_t i = first; i < model.layers.size(); ++i)
                model.layers[i].profile_override = entry.profile;
    }
    return model;
}

// --- JSON -------------------------------------------------------------

ActivationProfile
profileFromJson(const json::Value& value, ActivationProfile profile,
                const std::string& context)
{
    requireObject(value, context);
    expectOnlyKeys(value,
                   {"bit_density", "cluster_fraction", "bank_size",
                    "subset_drop_prob", "temporal_repeat", "union_prob",
                    "noise_insert_prob"},
                   context);
    for (const auto& [key, v] : value.asObject()) {
        const std::string field_context = context + "." + key;
        if (key == "bank_size") {
            profile.bank_size = requireSizeValue(v, field_context);
            continue;
        }
        const double number = requireNumberValue(v, field_context);
        if (key == "bit_density")
            profile.bit_density = number;
        else if (key == "cluster_fraction")
            profile.cluster_fraction = number;
        else if (key == "subset_drop_prob")
            profile.subset_drop_prob = number;
        else if (key == "temporal_repeat")
            profile.temporal_repeat = number;
        else if (key == "union_prob")
            profile.union_prob = number;
        else if (key == "noise_insert_prob")
            profile.noise_insert_prob = number;
    }
    return profile;
}

json::Value
profileToJson(const ActivationProfile& p)
{
    json::Value profile = json::Value::object();
    profile.set("bit_density", p.bit_density);
    profile.set("cluster_fraction", p.cluster_fraction);
    profile.set("bank_size", p.bank_size);
    profile.set("subset_drop_prob", p.subset_drop_prob);
    profile.set("temporal_repeat", p.temporal_repeat);
    profile.set("union_prob", p.union_prob);
    profile.set("noise_insert_prob", p.noise_insert_prob);
    return profile;
}

namespace {

SymbolicSize
parseSymbolicSize(const json::Value& value, const std::string& context)
{
    if (value.isString()) {
        const std::string& symbol = value.asString();
        if (symbol != "num_classes" && symbol != "seq_len")
            schemaError(context, "unknown symbolic size \"" + symbol +
                                     "\" (accepted: num_classes, "
                                     "seq_len, or a number)");
        return SymbolicSize(symbol);
    }
    return SymbolicSize(requireSizeValue(value, context));
}

json::Value
symbolicSizeJson(const SymbolicSize& size)
{
    if (!size.symbol.empty())
        return json::Value(size.symbol);
    return json::Value(size.value);
}

InputConfig
parseInputConfig(const json::Value& value, const std::string& context)
{
    requireObject(value, context);
    expectOnlyKeys(value,
                   {"time_steps", "channels", "height", "width",
                    "seq_len", "num_classes"},
                   context);
    InputConfig in;
    in.time_steps = optionalSize(value, "time_steps", in.time_steps,
                                 context);
    in.channels = optionalSize(value, "channels", in.channels, context);
    in.height = optionalSize(value, "height", in.height, context);
    in.width = optionalSize(value, "width", in.width, context);
    in.seq_len = optionalSize(value, "seq_len", in.seq_len, context);
    in.num_classes = optionalSize(value, "num_classes", in.num_classes,
                                  context);
    return in;
}

json::Value
inputConfigJson(const InputConfig& in)
{
    const InputConfig defaults;
    json::Value value = json::Value::object();
    if (in.time_steps != defaults.time_steps)
        value.set("time_steps", in.time_steps);
    if (in.channels != defaults.channels)
        value.set("channels", in.channels);
    if (in.height != defaults.height)
        value.set("height", in.height);
    if (in.width != defaults.width)
        value.set("width", in.width);
    if (in.seq_len != defaults.seq_len)
        value.set("seq_len", in.seq_len);
    if (in.num_classes != defaults.num_classes)
        value.set("num_classes", in.num_classes);
    return value;
}

LayerDesc
parseLayer(const json::Value& value, ActivationProfile base_profile,
           const std::string& context)
{
    requireObject(value, context);
    const std::string kind = requireString(value, "kind", context);
    LayerDesc layer;
    if (kind == "conv") {
        expectOnlyKeys(value,
                       {"kind", "name", "out_channels", "kernel",
                        "stride", "padding", "spiking", "checkpoint",
                        "from_checkpoint", "advance", "profile"},
                       context);
        ConvDesc conv;
        conv.name = requireString(value, "name", context);
        conv.out_channels =
            json::requireSize(value, "out_channels", context);
        conv.kernel = optionalSize(value, "kernel", conv.kernel, context);
        conv.stride = optionalSize(value, "stride", conv.stride, context);
        conv.padding =
            optionalSize(value, "padding", conv.padding, context);
        conv.spiking =
            optionalBool(value, "spiking", conv.spiking, context);
        conv.checkpoint =
            optionalBool(value, "checkpoint", conv.checkpoint, context);
        conv.from_checkpoint = optionalBool(value, "from_checkpoint",
                                            conv.from_checkpoint, context);
        conv.advance =
            optionalBool(value, "advance", conv.advance, context);
        if (conv.out_channels == 0 || conv.kernel == 0 ||
            conv.stride == 0)
            schemaError(context, "out_channels, kernel and stride must "
                                 "be positive");
        layer.op = conv;
    } else if (kind == "pool") {
        expectOnlyKeys(value, {"kind", "name", "factor", "global",
                               "profile"},
                       context);
        PoolDesc pool;
        pool.name = requireString(value, "name", context);
        pool.factor = optionalSize(value, "factor", pool.factor, context);
        pool.global = optionalBool(value, "global", pool.global, context);
        // A factor on a global pool would be silently ignored (and
        // dropped by serialization); fail loudly instead.
        if (pool.global && value.find("factor"))
            schemaError(context, "\"factor\" has no effect when "
                                 "\"global\" is true — remove one");
        if (!pool.global && pool.factor == 0)
            schemaError(context, "pool factor must be positive");
        layer.op = pool;
    } else if (kind == "linear") {
        expectOnlyKeys(value,
                       {"kind", "name", "out_features", "in_features",
                        "tokens", "profile"},
                       context);
        LinearDesc linear;
        linear.name = requireString(value, "name", context);
        const json::Value* out = value.find("out_features");
        if (!out)
            schemaError(context,
                        "missing required key \"out_features\"");
        linear.out_features =
            parseSymbolicSize(*out, context + ".out_features");
        if (const json::Value* in = value.find("in_features"))
            linear.in_features =
                requireSizeValue(*in, context + ".in_features");
        linear.tokens = optionalSize(value, "tokens", linear.tokens,
                                     context);
        if (linear.tokens == 0)
            schemaError(context, "tokens must be positive");
        layer.op = linear;
    } else if (kind == "encoder") {
        expectOnlyKeys(value,
                       {"kind", "prefix", "blocks", "dim", "mlp_hidden",
                        "softmax_attention", "seq_len", "profile"},
                       context);
        EncoderDesc encoder;
        encoder.prefix =
            optionalString(value, "prefix", encoder.prefix, context);
        encoder.blocks =
            optionalSize(value, "blocks", encoder.blocks, context);
        encoder.dim = json::requireSize(value, "dim", context);
        encoder.mlp_hidden =
            json::requireSize(value, "mlp_hidden", context);
        encoder.softmax_attention =
            optionalBool(value, "softmax_attention",
                         encoder.softmax_attention, context);
        if (const json::Value* seq = value.find("seq_len"))
            encoder.seq_len =
                parseSymbolicSize(*seq, context + ".seq_len");
        if (encoder.blocks == 0 || encoder.dim == 0 ||
            encoder.mlp_hidden == 0)
            schemaError(context, "blocks, dim and mlp_hidden must be "
                                 "positive");
        layer.op = encoder;
    } else {
        schemaError(context, "unknown layer kind \"" + kind +
                                 "\" (accepted: conv, pool, linear, "
                                 "encoder)");
    }
    if (const json::Value* profile = value.find("profile"))
        layer.profile = profileFromJson(*profile, base_profile,
                                        context + ".profile");
    return layer;
}

json::Value
layerJson(const LayerDesc& layer)
{
    json::Value value = json::Value::object();
    if (const auto* conv = std::get_if<ConvDesc>(&layer.op)) {
        value.set("kind", "conv");
        value.set("name", conv->name);
        value.set("out_channels", conv->out_channels);
        value.set("kernel", conv->kernel);
        value.set("stride", conv->stride);
        value.set("padding", conv->padding);
        if (!conv->spiking)
            value.set("spiking", false);
        if (conv->checkpoint)
            value.set("checkpoint", true);
        if (conv->from_checkpoint)
            value.set("from_checkpoint", true);
        if (!conv->advance)
            value.set("advance", false);
    } else if (const auto* pool =
                   std::get_if<PoolDesc>(&layer.op)) {
        value.set("kind", "pool");
        value.set("name", pool->name);
        if (pool->global)
            value.set("global", true);
        else if (pool->factor != 2)
            value.set("factor", pool->factor);
    } else if (const auto* lin =
                   std::get_if<LinearDesc>(&layer.op)) {
        value.set("kind", "linear");
        value.set("name", lin->name);
        if (lin->in_features)
            value.set("in_features", *lin->in_features);
        value.set("out_features", symbolicSizeJson(lin->out_features));
        if (lin->tokens != 1)
            value.set("tokens", lin->tokens);
    } else {
        const auto& enc = std::get<EncoderDesc>(layer.op);
        value.set("kind", "encoder");
        if (enc.prefix != "block")
            value.set("prefix", enc.prefix);
        value.set("blocks", enc.blocks);
        value.set("dim", enc.dim);
        value.set("mlp_hidden", enc.mlp_hidden);
        if (enc.softmax_attention)
            value.set("softmax_attention", true);
        if (enc.seq_len)
            value.set("seq_len", symbolicSizeJson(*enc.seq_len));
    }
    if (layer.profile)
        value.set("profile", profileToJson(*layer.profile));
    return value;
}

} // namespace

ModelDesc
ModelDesc::fromJson(const json::Value& value)
{
    const std::string top = "model definition";
    requireObject(value, top);
    expectOnlyKeys(value,
                   {"name", "description", "input", "profile", "layers"},
                   top);
    ModelDesc desc;
    desc.name = requireString(value, "name", top);
    if (desc.name.empty())
        schemaError(top, "\"name\" must not be empty");
    desc.description = optionalString(value, "description", "", top);
    if (const json::Value* input = value.find("input"))
        desc.input = parseInputConfig(*input, top + ".input");
    if (const json::Value* profile = value.find("profile"))
        desc.profile = profileFromJson(*profile, ActivationProfile{},
                                       top + ".profile");
    const json::Value::Array& layers = requireArray(value, "layers", top);
    if (layers.empty())
        schemaError(top, "\"layers\" must list at least one layer");
    const ActivationProfile base =
        desc.profile.value_or(ActivationProfile{});
    for (std::size_t i = 0; i < layers.size(); ++i)
        desc.layers.push_back(parseLayer(
            layers[i], base, "layers[" + std::to_string(i) + "]"));
    return desc;
}

ModelDesc
ModelDesc::load(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        throw std::invalid_argument("cannot open model file: " + path);
    std::ostringstream text;
    text << is.rdbuf();
    try {
        return fromJson(json::Value::parse(text.str()));
    } catch (const std::exception& e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
}

json::Value
ModelDesc::toJson() const
{
    json::Value root = json::Value::object();
    root.set("name", name);
    if (!description.empty())
        root.set("description", description);
    if (input)
        root.set("input", inputConfigJson(*input));
    if (profile)
        root.set("profile", profileToJson(*profile));
    json::Value layers_json = json::Value::array();
    for (const LayerDesc& layer : layers)
        layers_json.push(layerJson(layer));
    root.set("layers", std::move(layers_json));
    return root;
}

bool
ModelDesc::save(const std::string& path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    toJson().write(os, 2);
    os << '\n';
    return static_cast<bool>(os.flush());
}

} // namespace prosperity
