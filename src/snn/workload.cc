#include "workload.h"

#include "sim/logging.h"

namespace prosperity {

const char*
modelName(ModelId id)
{
    switch (id) {
      case ModelId::kVgg16: return "VGG16";
      case ModelId::kVgg9: return "VGG9";
      case ModelId::kResNet18: return "ResNet18";
      case ModelId::kLeNet5: return "LeNet5";
      case ModelId::kSpikformer: return "Spikformer";
      case ModelId::kSdt: return "SDT";
      case ModelId::kSpikeBert: return "SpikeBERT";
      case ModelId::kSpikingBert: return "SpikingBERT";
    }
    return "?";
}

const char*
datasetName(DatasetId id)
{
    switch (id) {
      case DatasetId::kCifar10: return "CIFAR10";
      case DatasetId::kCifar100: return "CIFAR100";
      case DatasetId::kCifar10Dvs: return "CIFAR10DVS";
      case DatasetId::kMnist: return "MNIST";
      case DatasetId::kSst2: return "SST-2";
      case DatasetId::kSst5: return "SST-5";
      case DatasetId::kMr: return "MR";
      case DatasetId::kQqp: return "QQP";
      case DatasetId::kMnli: return "MNLI";
    }
    return "?";
}

const std::vector<ModelId>&
allModels()
{
    static const std::vector<ModelId> models = {
        ModelId::kVgg16,      ModelId::kVgg9,
        ModelId::kResNet18,   ModelId::kLeNet5,
        ModelId::kSpikformer, ModelId::kSdt,
        ModelId::kSpikeBert,  ModelId::kSpikingBert,
    };
    return models;
}

const std::vector<DatasetId>&
allDatasets()
{
    static const std::vector<DatasetId> datasets = {
        DatasetId::kCifar10, DatasetId::kCifar100,
        DatasetId::kCifar10Dvs, DatasetId::kMnist,
        DatasetId::kSst2,    DatasetId::kSst5,
        DatasetId::kMr,      DatasetId::kQqp,
        DatasetId::kMnli,
    };
    return datasets;
}

std::optional<ModelId>
modelFromName(const std::string& name)
{
    for (ModelId id : allModels())
        if (name == modelName(id))
            return id;
    return std::nullopt;
}

std::optional<DatasetId>
datasetFromName(const std::string& name)
{
    for (DatasetId id : allDatasets())
        if (name == datasetName(id))
            return id;
    return std::nullopt;
}

bool
operator==(const ActivationProfile& a, const ActivationProfile& b)
{
    return a.bit_density == b.bit_density &&
           a.cluster_fraction == b.cluster_fraction &&
           a.bank_size == b.bank_size &&
           a.subset_drop_prob == b.subset_drop_prob &&
           a.temporal_repeat == b.temporal_repeat &&
           a.union_prob == b.union_prob &&
           a.noise_insert_prob == b.noise_insert_prob;
}

bool
operator==(const Workload& a, const Workload& b)
{
    return a.model_id == b.model_id && a.dataset_id == b.dataset_id &&
           a.profile == b.profile;
}

InputConfig
datasetInput(DatasetId id)
{
    InputConfig in;
    switch (id) {
      case DatasetId::kCifar10:
        in = {4, 3, 32, 32, 64, 10};
        break;
      case DatasetId::kCifar100:
        in = {4, 3, 32, 32, 64, 100};
        break;
      case DatasetId::kCifar10Dvs:
        // DVS event streams: 2 polarity channels, 128x128 frames resized
        // to 64x64, 8 time steps (standard SpikingJelly preprocessing).
        in = {8, 2, 64, 64, 64, 10};
        break;
      case DatasetId::kMnist:
        in = {4, 1, 28, 28, 64, 10};
        break;
      case DatasetId::kSst2:
        in = {4, 3, 32, 32, 64, 2};
        break;
      case DatasetId::kSst5:
        in = {4, 3, 32, 32, 64, 5};
        break;
      case DatasetId::kMr:
        in = {4, 3, 32, 32, 64, 2};
        break;
      case DatasetId::kQqp:
        in = {4, 3, 32, 32, 128, 2};
        break;
      case DatasetId::kMnli:
        in = {4, 3, 32, 32, 128, 3};
        break;
    }
    return in;
}

std::string
Workload::name() const
{
    return std::string(modelName(model_id)) + "/" +
           datasetName(dataset_id);
}

ModelSpec
Workload::buildModel() const
{
    const InputConfig in = datasetInput(dataset_id);
    switch (model_id) {
      case ModelId::kVgg16: return buildVgg16(in);
      case ModelId::kVgg9: return buildVgg9(in);
      case ModelId::kResNet18: return buildResNet18(in);
      case ModelId::kLeNet5: return buildLeNet5(in);
      case ModelId::kSpikformer: return buildSpikformer(in);
      case ModelId::kSdt: return buildSdt(in);
      case ModelId::kSpikeBert: return buildSpikeBert(in);
      case ModelId::kSpikingBert: return buildSpikingBert(in);
    }
    panic("unknown model id");
}

namespace {

/**
 * Calibration table (see DESIGN.md substitution #1). Bit densities for
 * workloads the paper quotes exactly are used verbatim (VGG-16/CIFAR100
 * 34.21%, SpikingBERT/SST-2 20.49%, SpikeBERT 13.19%); the rest follow
 * the per-family levels visible in Fig. 11. Correlation parameters are
 * tuned so the measured product densities land in the paper's range
 * (average ~5x below bit density, up to ~20x for SpikeBERT).
 */
ActivationProfile
profileFor(ModelId model, DatasetId dataset)
{
    ActivationProfile p;
    switch (model) {
      case ModelId::kVgg16:
        p = {0.32, 0.95, 8, 0.30, 0.55, 0.10};
        if (dataset == DatasetId::kCifar100)
            p.bit_density = 0.3421;
        if (dataset == DatasetId::kCifar10Dvs)
            p.bit_density = 0.28;
        break;
      case ModelId::kVgg9:
        p = {0.28, 0.92, 9, 0.30, 0.50, 0.10};
        if (dataset == DatasetId::kCifar100)
            p.bit_density = 0.30;
        if (dataset == DatasetId::kMnist)
            p.bit_density = 0.24;
        break;
      case ModelId::kResNet18:
        p = {0.14, 0.70, 14, 0.28, 0.30, 0.10};
        if (dataset == DatasetId::kCifar100)
            p.bit_density = 0.15;
        if (dataset == DatasetId::kCifar10Dvs)
            p.bit_density = 0.18;
        break;
      case ModelId::kLeNet5:
        p = {0.22, 0.78, 12, 0.30, 0.35, 0.10};
        break;
      case ModelId::kSpikformer:
        p = {0.22, 0.80, 12, 0.26, 0.35, 0.12};
        if (dataset == DatasetId::kCifar100)
            p.bit_density = 0.23;
        if (dataset == DatasetId::kCifar10Dvs)
            p.bit_density = 0.20;
        break;
      case ModelId::kSdt:
        p = {0.13, 0.68, 14, 0.28, 0.30, 0.12};
        if (dataset == DatasetId::kCifar100)
            p.bit_density = 0.14;
        if (dataset == DatasetId::kCifar10Dvs)
            p.bit_density = 0.15;
        break;
      case ModelId::kSpikeBert:
        // Paper abstract: bit density 13.19%, product density 1.23%.
        p = {0.1319, 0.90, 6, 0.32, 0.55, 0.08};
        break;
      case ModelId::kSpikingBert:
        // Table II: bit 20.49%, one-prefix product 2.98% on SST-2.
        p = {0.2049, 0.84, 12, 0.30, 0.45, 0.12};
        break;
    }
    return p;
}

} // namespace

Workload
makeWorkload(ModelId model, DatasetId dataset)
{
    return Workload{model, dataset, profileFor(model, dataset)};
}

std::vector<Workload>
fig8Suite()
{
    using M = ModelId;
    using D = DatasetId;
    return {
        makeWorkload(M::kVgg16, D::kCifar10),
        makeWorkload(M::kVgg16, D::kCifar100),
        makeWorkload(M::kResNet18, D::kCifar10),
        makeWorkload(M::kResNet18, D::kCifar100),
        makeWorkload(M::kSpikformer, D::kCifar10),
        makeWorkload(M::kSpikformer, D::kCifar10Dvs),
        makeWorkload(M::kSpikformer, D::kCifar100),
        makeWorkload(M::kSdt, D::kCifar10),
        makeWorkload(M::kSdt, D::kCifar10Dvs),
        makeWorkload(M::kSdt, D::kCifar100),
        makeWorkload(M::kSpikeBert, D::kSst2),
        makeWorkload(M::kSpikeBert, D::kMr),
        makeWorkload(M::kSpikeBert, D::kSst5),
        makeWorkload(M::kSpikingBert, D::kSst2),
        makeWorkload(M::kSpikingBert, D::kQqp),
        makeWorkload(M::kSpikingBert, D::kMnli),
    };
}

std::vector<Workload>
fig11Suite()
{
    using M = ModelId;
    using D = DatasetId;
    std::vector<Workload> suite = {
        makeWorkload(M::kVgg16, D::kCifar10),
        makeWorkload(M::kVgg16, D::kCifar100),
        makeWorkload(M::kVgg16, D::kCifar10Dvs),
        makeWorkload(M::kVgg9, D::kCifar10),
        makeWorkload(M::kVgg9, D::kCifar100),
        makeWorkload(M::kLeNet5, D::kMnist),
        makeWorkload(M::kResNet18, D::kCifar10Dvs),
        makeWorkload(M::kResNet18, D::kCifar100),
        makeWorkload(M::kSpikformer, D::kCifar10Dvs),
        makeWorkload(M::kSpikformer, D::kCifar100),
        makeWorkload(M::kSdt, D::kCifar10Dvs),
        makeWorkload(M::kSdt, D::kCifar100),
        makeWorkload(M::kSpikeBert, D::kSst2),
        makeWorkload(M::kSpikeBert, D::kMr),
        makeWorkload(M::kSpikeBert, D::kSst5),
        makeWorkload(M::kSpikingBert, D::kSst2),
        makeWorkload(M::kSpikingBert, D::kQqp),
        makeWorkload(M::kSpikingBert, D::kMnli),
    };
    return suite;
}

} // namespace prosperity
