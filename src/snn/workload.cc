#include "workload.h"

namespace prosperity {

bool
operator==(const ActivationProfile& a, const ActivationProfile& b)
{
    return a.bit_density == b.bit_density &&
           a.cluster_fraction == b.cluster_fraction &&
           a.bank_size == b.bank_size &&
           a.subset_drop_prob == b.subset_drop_prob &&
           a.temporal_repeat == b.temporal_repeat &&
           a.union_prob == b.union_prob &&
           a.noise_insert_prob == b.noise_insert_prob;
}

bool
operator==(const Workload& a, const Workload& b)
{
    // Keys are canonical when built through makeWorkload; canonicalize
    // here too so hand-assembled case variants still compare equal,
    // matching the registries' case-insensitive lookup.
    return ModelRegistry::canonicalKey(a.model) ==
               ModelRegistry::canonicalKey(b.model) &&
           DatasetRegistry::canonicalKey(a.dataset) ==
               DatasetRegistry::canonicalKey(b.dataset) &&
           a.profile == b.profile;
}

std::string
Workload::modelName() const
{
    return ModelRegistry::instance().displayName(model);
}

std::string
Workload::datasetName() const
{
    return DatasetRegistry::instance().displayName(dataset);
}

std::string
Workload::name() const
{
    return modelName() + "/" + datasetName();
}

ModelSpec
Workload::buildModel() const
{
    return ModelRegistry::instance().build(model,
                                           defaultInputConfig(dataset));
}

Workload
makeWorkload(const std::string& model, const std::string& dataset)
{
    // Validate against the original spellings so errors echo what the
    // caller wrote. profileFor validates the model; the dataset needs
    // an eager check of its own (profileFor tolerates unknown
    // datasets, which is wrong here: a typo'd dataset must fail with
    // the registered roster, not silently get the base profile).
    (void)defaultInputConfig(dataset);
    Workload workload;
    workload.profile =
        ModelRegistry::instance().profileFor(model, dataset);
    workload.model = ModelRegistry::canonicalKey(model);
    workload.dataset = DatasetRegistry::canonicalKey(dataset);
    return workload;
}

std::vector<Workload>
fig8Suite()
{
    return {
        makeWorkload("VGG16", "CIFAR10"),
        makeWorkload("VGG16", "CIFAR100"),
        makeWorkload("ResNet18", "CIFAR10"),
        makeWorkload("ResNet18", "CIFAR100"),
        makeWorkload("Spikformer", "CIFAR10"),
        makeWorkload("Spikformer", "CIFAR10DVS"),
        makeWorkload("Spikformer", "CIFAR100"),
        makeWorkload("SDT", "CIFAR10"),
        makeWorkload("SDT", "CIFAR10DVS"),
        makeWorkload("SDT", "CIFAR100"),
        makeWorkload("SpikeBERT", "SST-2"),
        makeWorkload("SpikeBERT", "MR"),
        makeWorkload("SpikeBERT", "SST-5"),
        makeWorkload("SpikingBERT", "SST-2"),
        makeWorkload("SpikingBERT", "QQP"),
        makeWorkload("SpikingBERT", "MNLI"),
    };
}

std::vector<Workload>
fig11Suite()
{
    return {
        makeWorkload("VGG16", "CIFAR10"),
        makeWorkload("VGG16", "CIFAR100"),
        makeWorkload("VGG16", "CIFAR10DVS"),
        makeWorkload("VGG9", "CIFAR10"),
        makeWorkload("VGG9", "CIFAR100"),
        makeWorkload("LeNet5", "MNIST"),
        makeWorkload("ResNet18", "CIFAR10DVS"),
        makeWorkload("ResNet18", "CIFAR100"),
        makeWorkload("Spikformer", "CIFAR10DVS"),
        makeWorkload("Spikformer", "CIFAR100"),
        makeWorkload("SDT", "CIFAR10DVS"),
        makeWorkload("SDT", "CIFAR100"),
        makeWorkload("SpikeBERT", "SST-2"),
        makeWorkload("SpikeBERT", "MR"),
        makeWorkload("SpikeBERT", "SST-5"),
        makeWorkload("SpikingBERT", "SST-2"),
        makeWorkload("SpikingBERT", "QQP"),
        makeWorkload("SpikingBERT", "MNLI"),
    };
}

} // namespace prosperity
