/**
 * @file
 * Shared helpers for parsing JSON documents against a schema with
 * key-path error messages ("workloads[2].profile: expected a number,
 * got string"). Used by campaign specs (src/analysis/campaign.cc) and
 * declarative model definitions (src/snn/model_desc.cc) so both fail
 * with the same actionable style.
 *
 * Every helper takes a `context` string naming the position in the
 * document; failures throw std::invalid_argument("<context>: <what>").
 */

#ifndef PROSPERITY_UTIL_JSON_SCHEMA_H
#define PROSPERITY_UTIL_JSON_SCHEMA_H

#include <cmath>
#include <initializer_list>
#include <stdexcept>
#include <string>

#include "util/json.h"

namespace prosperity::json {

[[noreturn]] inline void
schemaError(const std::string& context, const std::string& message)
{
    throw std::invalid_argument(context + ": " + message);
}

inline const Value&
requireObject(const Value& value, const std::string& context)
{
    if (!value.isObject())
        schemaError(context, std::string("expected an object, got ") +
                                 Value::typeName(value.type()));
    return value;
}

/** Reject unknown keys so a typo fails loudly instead of silently
 *  configuring defaults. */
inline void
expectOnlyKeys(const Value& object,
               std::initializer_list<const char*> known,
               const std::string& context)
{
    for (const auto& [key, value] : object.asObject()) {
        (void)value;
        bool recognized = false;
        for (const char* k : known)
            if (key == k) {
                recognized = true;
                break;
            }
        if (!recognized) {
            std::string roster;
            for (const char* k : known) {
                if (!roster.empty())
                    roster += ", ";
                roster += k;
            }
            schemaError(context, "unknown key \"" + key +
                                     "\" (accepted: " + roster + ")");
        }
    }
}

inline std::string
requireString(const Value& object, const char* key,
              const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        schemaError(context,
                    std::string("missing required key \"") + key + '"');
    if (!value->isString())
        schemaError(context, std::string("key \"") + key +
                                 "\" must be a string, got " +
                                 Value::typeName(value->type()));
    return value->asString();
}

inline std::string
optionalString(const Value& object, const char* key,
               const std::string& fallback, const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        return fallback;
    if (!value->isString())
        schemaError(context, std::string("key \"") + key +
                                 "\" must be a string, got " +
                                 Value::typeName(value->type()));
    return value->asString();
}

inline double
requireNumberValue(const Value& value, const std::string& context)
{
    if (!value.isNumber())
        schemaError(context, std::string("expected a number, got ") +
                                 Value::typeName(value.type()));
    return value.asNumber();
}

inline std::size_t
requireSizeValue(const Value& value, const std::string& context)
{
    const double v = requireNumberValue(value, context);
    if (v < 0.0 || v != std::floor(v))
        schemaError(context, "expected a non-negative integer, got " +
                                 formatDouble(v));
    // JSON numbers are doubles: integers above 2^53 would be silently
    // rounded (a seed would select a different RNG stream than
    // written), so reject them instead. >= because 2^53+1 itself
    // rounds down to exactly 2^53 during parsing and would otherwise
    // slip through.
    if (v >= 9007199254740992.0)
        schemaError(context, formatDouble(v) +
                                 " exceeds 2^53 and cannot be "
                                 "represented exactly in JSON");
    return static_cast<std::size_t>(v);
}

inline std::size_t
requireSize(const Value& object, const char* key,
            const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        schemaError(context,
                    std::string("missing required key \"") + key + '"');
    return requireSizeValue(*value, context + "." + key);
}

inline std::size_t
optionalSize(const Value& object, const char* key, std::size_t fallback,
             const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        return fallback;
    return requireSizeValue(*value, context + "." + key);
}

inline bool
optionalBool(const Value& object, const char* key, bool fallback,
             const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        return fallback;
    if (!value->isBool())
        schemaError(context, std::string("key \"") + key +
                                 "\" must be a bool, got " +
                                 Value::typeName(value->type()));
    return value->asBool();
}

inline const Value::Array&
requireArray(const Value& object, const char* key,
             const std::string& context)
{
    const Value* value = object.find(key);
    if (!value)
        schemaError(context,
                    std::string("missing required key \"") + key + '"');
    if (!value->isArray())
        schemaError(context, std::string("key \"") + key +
                                 "\" must be an array, got " +
                                 Value::typeName(value->type()));
    return value->asArray();
}

} // namespace prosperity::json

#endif // PROSPERITY_UTIL_JSON_SCHEMA_H
