/**
 * @file
 * Dependency-free JSON value type: parser, writer, and the repo's
 * canonical number formatting.
 *
 * This is the serialization layer behind campaign specs
 * (campaigns/<name>.json -> CampaignSpec) and campaign reports
 * (CampaignReport -> report.json). Design points:
 *
 * - **Objects preserve insertion order** (stored as a member vector,
 *   not a map), so serializing a document reproduces the field order
 *   it was built with and reports diff cleanly across runs.
 * - **Numbers are locale-independent and round-trip exact**:
 *   formatDouble() emits the shortest classic-locale decimal string
 *   (up to 17 significant digits) that parses back to the identical
 *   bit pattern, and the parser converts through the classic locale
 *   regardless of the process's global locale. parse(dump(x)) == x
 *   bitwise for every finite double.
 * - **Errors carry positions**: ParseError reports 1-based line and
 *   column, and the typed accessors (asNumber(), at(key), ...) throw
 *   std::runtime_error naming the expected and actual type, so a
 *   malformed campaign spec fails with an actionable message instead
 *   of a default-constructed value.
 *
 * Non-finite numbers have no JSON representation; dump() writes them
 * as `null` (and formatDouble() returns "nan"/"inf"/"-inf" for
 * non-JSON consumers such as CSV cells).
 */

#ifndef PROSPERITY_UTIL_JSON_H
#define PROSPERITY_UTIL_JSON_H

#include <cstddef>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace prosperity::json {

/**
 * Locale-independent, round-trip-exact double formatting: the
 * shortest %.Ng-style string (N <= 17, classic locale) whose
 * parse-back is bitwise equal to `v`. Integral values within the
 * exactly-representable range print without an exponent ("42", "-0").
 */
std::string formatDouble(double v);

/** Parse failure with 1-based source position. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string& message, std::size_t line,
               std::size_t column);

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    std::size_t line_;
    std::size_t column_;
};

/** A JSON document node: null, bool, number, string, array or object. */
class Value
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    using Array = std::vector<Value>;
    /** Object member; members keep insertion order. */
    using Member = std::pair<std::string, Value>;
    using Object = std::vector<Member>;

    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool b) : data_(b) {}
    Value(double v) : data_(v) {}
    Value(int v) : data_(static_cast<double>(v)) {}
    Value(std::size_t v) : data_(static_cast<double>(v)) {}
    Value(const char* s) : data_(std::string(s)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    /** Empty array / object literals (clearer than Value(Array{})). */
    static Value array() { return Value(Array{}); }
    static Value object() { return Value(Object{}); }

    Type type() const;
    /** Human-readable name of a type ("object", "number", ...). */
    static const char* typeName(Type type);

    bool isNull() const { return type() == Type::kNull; }
    bool isBool() const { return type() == Type::kBool; }
    bool isNumber() const { return type() == Type::kNumber; }
    bool isString() const { return type() == Type::kString; }
    bool isArray() const { return type() == Type::kArray; }
    bool isObject() const { return type() == Type::kObject; }

    /** Typed accessors; throw std::runtime_error naming expected vs
     *  actual type on mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const Array& asArray() const;
    Array& asArray();
    const Object& asObject() const;
    Object& asObject();

    /** Object lookup: nullptr when absent (or when not an object). */
    const Value* find(const std::string& key) const;

    /** Object lookup; throws std::runtime_error naming the key when
     *  absent or when this is not an object. */
    const Value& at(const std::string& key) const;

    /** Insert or replace an object member (appends new keys). */
    Value& set(const std::string& key, Value value);

    /** Append an array element. */
    Value& push(Value value);

    /**
     * Parse a complete JSON document (trailing whitespace allowed,
     * trailing content is an error). Throws ParseError.
     */
    static Value parse(const std::string& text);

    /**
     * Serialize. indent >= 0 pretty-prints with that many spaces per
     * level (members on their own lines); indent < 0 is compact.
     * Output ends without a trailing newline.
     */
    void write(std::ostream& os, int indent = 2) const;
    std::string dump(int indent = 2) const;

    bool operator==(const Value& other) const { return data_ == other.data_; }
    bool operator!=(const Value& other) const { return !(*this == other); }

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        data_;
};

/** JSON string escaping of `s` (quotes, backslashes, control chars). */
std::string escape(const std::string& s);

} // namespace prosperity::json

#endif // PROSPERITY_UTIL_JSON_H
