#include "build_config.h"

namespace prosperity::util {

namespace {

std::string
compilerString()
{
#if defined(__clang__)
    return "clang " + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return "gcc " + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

} // namespace

BuildConfig
buildConfig()
{
    BuildConfig config;
#ifdef PROSPERITY_SANITIZE_NAME
    config.sanitizer = PROSPERITY_SANITIZE_NAME;
#endif
    config.compiler = compilerString();
#if defined(__clang__)
    config.thread_annotations_active = true;
#endif
#ifdef PROSPERITY_THREAD_SAFETY_BUILD
    config.thread_safety_enforced = true;
#endif
#ifndef NDEBUG
    config.asserts_enabled = true;
#endif
    return config;
}

std::string
buildConfigSummary()
{
    const BuildConfig config = buildConfig();
    std::string out = "sanitizer=";
    out += config.sanitizer.empty() ? "none" : config.sanitizer;
    out += " thread-annotations=";
    if (!config.thread_annotations_active)
        out += "no-op";
    else
        out += config.thread_safety_enforced ? "enforced" : "active";
    out += " asserts=";
    out += config.asserts_enabled ? "on" : "off";
    out += " compiler=";
    out += config.compiler;
    return out;
}

} // namespace prosperity::util
