#include "socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace prosperity::net {

namespace {

[[noreturn]] void
socketError(const std::string& what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

int
openListener(std::uint16_t port, int backlog, std::uint16_t* bound_port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        socketError("socket()");

    const int one = 1;
    if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0)
        socketError("setsockopt(SO_REUSEADDR)");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
        socketError("bind(127.0.0.1:" + std::to_string(port) + ')');
    if (::listen(sock.fd(), backlog) != 0)
        socketError("listen()");

    if (bound_port) {
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        if (::getsockname(sock.fd(),
                          reinterpret_cast<sockaddr*>(&actual),
                          &len) != 0)
            socketError("getsockname()");
        *bound_port = ntohs(actual.sin_port);
    }
    return sock.release();
}

int
acceptWithTimeout(int listener_fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = listener_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR)
            return kInvalidFd; // treated as a timeout; caller re-polls
        socketError("poll(listener)");
    }
    if (ready == 0)
        return kInvalidFd;

    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
        // The connection can vanish between poll and accept; that is a
        // timeout from the caller's point of view, not a failure.
        if (errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == EINTR)
            return kInvalidFd;
        socketError("accept()");
    }
    return fd;
}

int
connectLoopback(std::uint16_t port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        socketError("socket()");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        socketError("connect(127.0.0.1:" + std::to_string(port) + ')');
    return sock.release();
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR)
            return false; // caller re-polls on its next slice
        socketError("poll(connection)");
    }
    return ready > 0;
}

bool
writeAll(int fd, const void* data, std::size_t size)
{
    const char* bytes = static_cast<const char*>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd, bytes, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return false;
            socketError("send()");
        }
        bytes += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t
readSome(int fd, void* data, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::recv(fd, data, size, 0);
        if (n >= 0)
            return static_cast<std::size_t>(n);
        if (errno == EINTR)
            continue;
        // A peer that slams the connection mid-read is EOF for the
        // request loop, not an internal server error.
        if (errno == ECONNRESET)
            return 0;
        socketError("recv()");
    }
}

void
closeFd(int fd)
{
    if (fd != kInvalidFd)
        ::close(fd);
}

} // namespace prosperity::net
