/**
 * @file
 * Minimal POSIX TCP helpers shared by the HTTP layer (src/serve/) and
 * its tests: open/accept/connect loopback sockets and move whole
 * buffers through them. Everything is blocking; concurrency is the
 * caller's job (the HTTP server owns a worker pool, the tests spawn
 * plain threads).
 *
 * All functions report failure by throwing std::runtime_error with the
 * errno text, except where noted. File descriptors are plain ints so
 * no platform header leaks out of this file; Socket is a tiny RAII
 * owner for scopes that would otherwise leak one on an exception.
 */

#ifndef PROSPERITY_UTIL_SOCKET_H
#define PROSPERITY_UTIL_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace prosperity::net {

/** Invalid descriptor marker (never returned by the open helpers). */
inline constexpr int kInvalidFd = -1;

/**
 * Create a listening IPv4 TCP socket on 127.0.0.1:`port` (port 0 picks
 * a free ephemeral port) with SO_REUSEADDR set. On return `bound_port`
 * holds the actual port. Throws std::runtime_error on failure.
 */
int openListener(std::uint16_t port, int backlog,
                 std::uint16_t* bound_port);

/**
 * Accept one connection, waiting at most `timeout_ms`. Returns the
 * connected descriptor, or kInvalidFd on timeout (so an accept loop
 * can poll a stop flag without platform-specific wakeup tricks).
 * Throws std::runtime_error on a real accept failure.
 */
int acceptWithTimeout(int listener_fd, int timeout_ms);

/** Connect to 127.0.0.1:`port`. Throws std::runtime_error on failure. */
int connectLoopback(std::uint16_t port);

/**
 * Wait until `fd` is readable (data, EOF or error — anything that
 * makes a recv() return immediately). Returns false on timeout.
 * Throws std::runtime_error on a poll failure.
 */
bool waitReadable(int fd, int timeout_ms);

/**
 * Write all `size` bytes (SIGPIPE suppressed). Returns false when the
 * peer has gone away (EPIPE / ECONNRESET) — routine during shutdown —
 * and throws std::runtime_error on other errors.
 */
bool writeAll(int fd, const void* data, std::size_t size);

/**
 * Read up to `size` bytes into `data`. Returns the number of bytes
 * read; 0 means orderly EOF. Throws std::runtime_error on error.
 */
std::size_t readSome(int fd, void* data, std::size_t size);

/** Close `fd` (ignores kInvalidFd and close errors). */
void closeFd(int fd);

/** RAII descriptor owner (movable, closes on destruction). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { closeFd(fd_); }

    Socket(Socket&& other) noexcept : fd_(other.release()) {}
    Socket& operator=(Socket&& other) noexcept
    {
        if (this != &other) {
            closeFd(fd_);
            fd_ = other.release();
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ != kInvalidFd; }

    /** Give up ownership without closing. */
    int release()
    {
        const int fd = fd_;
        fd_ = kInvalidFd;
        return fd;
    }

    void reset(int fd = kInvalidFd)
    {
        closeFd(fd_);
        fd_ = fd;
    }

  private:
    int fd_ = kInvalidFd;
};

} // namespace prosperity::net

#endif // PROSPERITY_UTIL_SOCKET_H
