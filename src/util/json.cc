#include "json.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <locale>
#include <sstream>

namespace prosperity::json {

namespace {

/**
 * Locale-independent string -> double. Returns false for magnitudes
 * outside double range (subnormals are fine); the caller guarantees
 * `s` is a syntactically valid JSON number.
 */
bool
parseDoubleClassic(const std::string& s, double& out)
{
#if defined(__cpp_lib_to_chars)
    return std::from_chars(s.data(), s.data() + s.size(), out).ec ==
           std::errc();
#else
    std::istringstream is(s);
    is.imbue(std::locale::classic());
    is >> out;
    return !is.fail();
#endif
}

} // namespace

std::string
formatDouble(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0.0 ? "inf" : "-inf";
    // Integral fast path: every |v| < 2^53 integer is exact in double,
    // so plain decimal digits round-trip and read better than 1e+06.
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
        if (v == 0.0)
            return std::signbit(v) ? "-0" : "0";
        return std::to_string(static_cast<long long>(v));
    }
    std::string repr;
    for (int precision = 15; precision <= 17; ++precision) {
        std::ostringstream os;
        os.imbue(std::locale::classic());
        // lint:allow(double-format) this IS formatDouble, the impl
        os.precision(precision);
        os << v;
        repr = os.str();
        double back = 0.0;
        if (parseDoubleClassic(repr, back) &&
            std::memcmp(&back, &v, sizeof v) == 0)
            break; // shortest round-tripping form found
        // 17 significant digits always round-trip; the loop cannot
        // fall through with a lossy repr.
    }
    return repr;
}

ParseError::ParseError(const std::string& message, std::size_t line,
                       std::size_t column)
    : std::runtime_error("JSON parse error at line " +
                         std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column)
{
}

Value::Type
Value::type() const
{
    return static_cast<Type>(data_.index());
}

const char*
Value::typeName(Type type)
{
    switch (type) {
      case Type::kNull: return "null";
      case Type::kBool: return "bool";
      case Type::kNumber: return "number";
      case Type::kString: return "string";
      case Type::kArray: return "array";
      case Type::kObject: return "object";
    }
    return "?";
}

namespace {

[[noreturn]] void
typeMismatch(const char* expected, Value::Type actual)
{
    throw std::runtime_error(std::string("JSON value is ") +
                             Value::typeName(actual) + ", expected " +
                             expected);
}

} // namespace

bool
Value::asBool() const
{
    if (!isBool())
        typeMismatch("bool", type());
    return std::get<bool>(data_);
}

double
Value::asNumber() const
{
    if (!isNumber())
        typeMismatch("number", type());
    return std::get<double>(data_);
}

const std::string&
Value::asString() const
{
    if (!isString())
        typeMismatch("string", type());
    return std::get<std::string>(data_);
}

const Value::Array&
Value::asArray() const
{
    if (!isArray())
        typeMismatch("array", type());
    return std::get<Array>(data_);
}

Value::Array&
Value::asArray()
{
    if (!isArray())
        typeMismatch("array", type());
    return std::get<Array>(data_);
}

const Value::Object&
Value::asObject() const
{
    if (!isObject())
        typeMismatch("object", type());
    return std::get<Object>(data_);
}

Value::Object&
Value::asObject()
{
    if (!isObject())
        typeMismatch("object", type());
    return std::get<Object>(data_);
}

const Value*
Value::find(const std::string& key) const
{
    if (!isObject())
        return nullptr;
    for (const Member& member : std::get<Object>(data_))
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const Value&
Value::at(const std::string& key) const
{
    if (!isObject())
        typeMismatch("object", type());
    if (const Value* found = find(key))
        return *found;
    throw std::runtime_error("JSON object has no member \"" + key + "\"");
}

Value&
Value::set(const std::string& key, Value value)
{
    if (!isObject())
        typeMismatch("object", type());
    for (Member& member : std::get<Object>(data_)) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    std::get<Object>(data_).emplace_back(key, std::move(value));
    return *this;
}

Value&
Value::push(Value value)
{
    if (!isArray())
        typeMismatch("array", type());
    std::get<Array>(data_).push_back(std::move(value));
    return *this;
}

// --- Parser -----------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value parseDocument()
    {
        skipWhitespace();
        Value value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after the JSON document");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string& message) const
    {
        // Compute 1-based line/column of pos_ on demand (errors only).
        std::size_t line = 1, column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw ParseError(message, line, column);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    char next()
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void skipWhitespace()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    void expectLiteral(const char* literal)
    {
        for (const char* c = literal; *c; ++c)
            if (atEnd() || text_[pos_++] != *c) {
                --pos_;
                fail(std::string("invalid literal (expected \"") +
                     literal + "\")");
            }
    }

    Value parseValue()
    {
        if (atEnd())
            fail("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't': expectLiteral("true"); return Value(true);
          case 'f': expectLiteral("false"); return Value(false);
          case 'n': expectLiteral("null"); return Value(nullptr);
          default: return parseNumber();
        }
    }

    Value parseObject()
    {
        ++pos_; // '{'
        Value::Object members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return Value(std::move(members));
        }
        for (;;) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                fail("expected a string object key");
            std::string key = parseString();
            for (const Value::Member& member : members)
                if (member.first == key)
                    fail("duplicate object key \"" + key + "\"");
            skipWhitespace();
            if (atEnd() || next() != ':')
                fail("expected ':' after object key \"" + key + "\"");
            skipWhitespace();
            members.emplace_back(std::move(key), parseValue());
            skipWhitespace();
            const char c = next();
            if (c == '}')
                return Value(std::move(members));
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
    }

    Value parseArray()
    {
        ++pos_; // '['
        Value::Array elements;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return Value(std::move(elements));
        }
        for (;;) {
            skipWhitespace();
            elements.push_back(parseValue());
            skipWhitespace();
            const char c = next();
            if (c == ']')
                return Value(std::move(elements));
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
    }

    unsigned parseHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = next();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code += static_cast<unsigned>(c - 'A' + 10);
            else {
                --pos_;
                fail("invalid \\u escape digit");
            }
        }
        return code;
    }

    static void appendUtf8(std::string& out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    std::string parseString()
    {
        ++pos_; // '"'
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned code = parseHex4();
                  if (code >= 0xD800 && code <= 0xDBFF) {
                      // High surrogate: a low surrogate must follow.
                      if (atEnd() || next() != '\\' || next() != 'u') {
                          --pos_;
                          fail("unpaired UTF-16 surrogate");
                      }
                      const unsigned low = parseHex4();
                      if (low < 0xDC00 || low > 0xDFFF)
                          fail("invalid UTF-16 low surrogate");
                      code = 0x10000 + ((code - 0xD800) << 10) +
                             (low - 0xDC00);
                  } else if (code >= 0xDC00 && code <= 0xDFFF) {
                      fail("unpaired UTF-16 surrogate");
                  }
                  appendUtf8(out, code);
                  break;
              }
              default:
                  --pos_;
                  fail("invalid string escape");
            }
        }
    }

    Value parseNumber()
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("invalid number");
        if (peek() == '0')
            ++pos_; // leading zero may not be followed by digits
        else
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number: digit expected after '.'");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number: digit expected in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        // Convert the validated slice locale-independently.
        double v = 0.0;
        if (!parseDoubleClassic(text_.substr(start, pos_ - start), v)) {
            pos_ = start;
            fail("number out of range");
        }
        return Value(v);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string& text)
{
    return Parser(text).parseDocument();
}

// --- Writer -----------------------------------------------------------

std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream esc;
                esc << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += esc.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
writeValue(std::ostream& os, const Value& value, int indent, int depth)
{
    const bool pretty = indent >= 0;
    const auto newline = [&](int level) {
        if (pretty) {
            os << '\n';
            for (int i = 0; i < indent * level; ++i)
                os << ' ';
        }
    };

    switch (value.type()) {
      case Value::Type::kNull:
        os << "null";
        break;
      case Value::Type::kBool:
        os << (value.asBool() ? "true" : "false");
        break;
      case Value::Type::kNumber: {
          const double v = value.asNumber();
          // JSON has no NaN/Infinity literal; null is the least-bad
          // representable stand-in (documented in json.h).
          if (std::isnan(v) || std::isinf(v))
              os << "null";
          else
              os << formatDouble(v);
          break;
      }
      case Value::Type::kString:
        os << '"' << escape(value.asString()) << '"';
        break;
      case Value::Type::kArray: {
          const Value::Array& elements = value.asArray();
          if (elements.empty()) {
              os << "[]";
              break;
          }
          os << '[';
          for (std::size_t i = 0; i < elements.size(); ++i) {
              if (i)
                  os << ',';
              newline(depth + 1);
              writeValue(os, elements[i], indent, depth + 1);
          }
          newline(depth);
          os << ']';
          break;
      }
      case Value::Type::kObject: {
          const Value::Object& members = value.asObject();
          if (members.empty()) {
              os << "{}";
              break;
          }
          os << '{';
          for (std::size_t i = 0; i < members.size(); ++i) {
              if (i)
                  os << ',';
              newline(depth + 1);
              os << '"' << escape(members[i].first) << "\":";
              if (pretty)
                  os << ' ';
              writeValue(os, members[i].second, indent, depth + 1);
          }
          newline(depth);
          os << '}';
          break;
      }
    }
}

} // namespace

void
Value::write(std::ostream& os, int indent) const
{
    writeValue(os, *this, indent, 0);
}

std::string
Value::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

} // namespace prosperity::json
