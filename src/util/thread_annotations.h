/**
 * @file
 * Clang Thread Safety Analysis support: the attribute macros plus the
 * annotated synchronization primitives every class in src/ must use
 * instead of raw std::mutex / std::condition_variable members.
 *
 * Under Clang with `-Wthread-safety` (CI builds with
 * `-Werror=thread-safety`, see PROSPERITY_THREAD_SAFETY in
 * CMakeLists.txt) the compiler proves at compile time that every
 * GUARDED_BY member is only touched with its mutex held and that every
 * REQUIRES function is only called under the right lock. Under GCC —
 * the default local toolchain — all macros expand to nothing and the
 * wrappers cost exactly one std::mutex / std::condition_variable; no
 * behavior changes either way.
 *
 * Usage pattern (the repo-wide locking idiom):
 *
 *     class Engine {
 *         mutable util::Mutex mutex_;
 *         std::map<...> cache_ GUARDED_BY(mutex_);
 *         util::CondVar cv_;
 *
 *         void drainLocked() REQUIRES(mutex_);
 *
 *         void wait() {
 *             util::UniqueLock lock(mutex_);
 *             while (cache_.empty())   // guarded access: lock held
 *                 cv_.wait(lock);
 *         }
 *     };
 *
 * Prefer explicit `while (!condition) cv.wait(lock);` loops over
 * predicate-lambda waits: the analysis sees the guarded reads in the
 * enclosing function (where the lock is provably held) instead of
 * inside a lambda it analyzes as a separate, lock-free function.
 *
 * The determinism linter (tools/lint/determinism_lint.py, rule
 * `naked-mutex`) rejects any `std::mutex` or
 * `std::condition_variable` member outside this header, so the
 * annotated wrappers are not optional.
 */

#ifndef PROSPERITY_UTIL_THREAD_ANNOTATIONS_H
#define PROSPERITY_UTIL_THREAD_ANNOTATIONS_H

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define PROSPERITY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROSPERITY_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex" in diagnostics). */
#define CAPABILITY(x) PROSPERITY_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY PROSPERITY_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the given mutex held. */
#define GUARDED_BY(x) PROSPERITY_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by the given mutex. */
#define PT_GUARDED_BY(x) PROSPERITY_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only with the listed mutexes already held. */
#define REQUIRES(...) \
    PROSPERITY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only with the listed mutexes held shared. */
#define REQUIRES_SHARED(...) \
    PROSPERITY_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the listed mutexes and returns holding them. */
#define ACQUIRE(...) \
    PROSPERITY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed mutexes. */
#define RELEASE(...) \
    PROSPERITY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that must NOT be called with the listed mutexes held
 *  (deadlock documentation: callees that lock them themselves). */
#define EXCLUDES(...) PROSPERITY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** try_lock-style function: acquires on the given return value. */
#define TRY_ACQUIRE(...) \
    PROSPERITY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Return value is a reference to something guarded by the mutex. */
#define RETURN_CAPABILITY(x) PROSPERITY_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (init/teardown paths where the
 *  discipline is upheld by construction, not provable locally). */
#define NO_THREAD_SAFETY_ANALYSIS \
    PROSPERITY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace prosperity::util {

/**
 * Annotated std::mutex. Same cost, same semantics; exists so members
 * can be declared GUARDED_BY(mutex_) and the analysis can track it.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /** The wrapped handle, for CondVar only. */
    std::mutex& native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** std::lock_guard for util::Mutex, visible to the analysis. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/**
 * std::unique_lock for util::Mutex: the scoped lock CondVar::wait
 * needs (wait atomically releases and reacquires, which the analysis
 * models as "held across the call" — correct, since the guarded reads
 * around a wait always happen with the lock held).
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex& mutex) ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }
    ~UniqueLock() RELEASE() {}

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    /** The wrapped handle, for CondVar only. */
    std::unique_lock<std::mutex>& native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable paired with util::Mutex via UniqueLock. Only the
 * single-step wait is offered — call sites spell the predicate as an
 * explicit `while (!ready) cv.wait(lock);` loop so the analysis checks
 * the guarded reads in the predicate (see the file comment).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Atomically release `lock`, sleep, reacquire before returning. */
    void wait(UniqueLock& lock) { cv_.wait(lock.native()); }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace prosperity::util

#endif // PROSPERITY_UTIL_THREAD_ANNOTATIONS_H
