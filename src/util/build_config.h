/**
 * @file
 * What analysis modes this binary was actually compiled with — the
 * build-time twin of the SIMD layer's runtime tier report. `prosperity
 * serve` and the test harness run under several configurations
 * (plain, ASan+UBSan, TSan, Clang thread-safety); when a daemon
 * misbehaves, "which build is this?" is the first question, so
 * `prosperity_cli list analysis` answers it from the binary itself
 * instead of trusting whoever launched it.
 */

#ifndef PROSPERITY_UTIL_BUILD_CONFIG_H
#define PROSPERITY_UTIL_BUILD_CONFIG_H

#include <string>

namespace prosperity::util {

/** Compile-time analysis configuration of this binary. */
struct BuildConfig
{
    /** PROSPERITY_SANITIZE value this build was configured with
     *  ("" when unsanitized). */
    std::string sanitizer;

    /** The compiler that produced the binary ("clang 17.0.1",
     *  "gcc 12.2.0", ...). */
    std::string compiler;

    /** True when the thread-safety annotations are live attributes
     *  (Clang); false when they compiled to no-ops (GCC et al.). */
    bool thread_annotations_active = false;

    /** True when the build enforced -Werror=thread-safety
     *  (PROSPERITY_THREAD_SAFETY=ON). */
    bool thread_safety_enforced = false;

    /** True when NDEBUG was off, i.e. asserts are compiled in. */
    bool asserts_enabled = false;
};

/** The configuration baked into this binary. */
BuildConfig buildConfig();

/** One-line human-readable summary, e.g.
 *  "sanitizer=thread annotations=active(enforced) compiler=clang 17".
 */
std::string buildConfigSummary();

} // namespace prosperity::util

#endif // PROSPERITY_UTIL_BUILD_CONFIG_H
