/**
 * @file
 * ProSparsity Processing Unit — layer-level pipeline model (Secs. V, VI).
 *
 * Maps one spiking GeMM onto the tiled PPU:
 *
 *  - the spike matrix is cut into ceil(M/m) x ceil(K/k) tiles;
 *  - each tile's ProSparsity phase (m + 4 cycles, plus exposed dispatch
 *    cycles in the ablation's traversal mode) overlaps the previous
 *    tile's computation phase (inter-phase pipeline, Sec. VI-B);
 *  - the computation phase of a tile repeats ceil(N/n) passes over the
 *    PE lanes, reusing the tile's meta information;
 *  - DRAM transfers stream under double buffering and only bound the
 *    layer when the GeMM is memory-bound.
 *
 * Large layers can be sampled (a strided subset of tiles is analyzed
 * and scaled), trading a <1% cycle error for large simulation speedup;
 * sampling never changes who-wins conclusions and is disabled in the
 * unit tests.
 */

#ifndef PROSPERITY_CORE_PPU_H
#define PROSPERITY_CORE_PPU_H

#include "arch/energy_model.h"
#include "arch/prosperity_config.h"
#include "core/tile_pipeline.h"

namespace prosperity {

/** Cycle/activity result of one spiking GeMM on the PPU. */
struct PpuLayerResult
{
    double cycles = 0.0;          ///< end-to-end latency (incl. memory)
    double compute_cycles = 0.0;  ///< PE-array busy cycles
    double prosparsity_cycles = 0.0; ///< total ProSparsity-phase cycles
    double exposed_prosparsity_cycles = 0.0; ///< not hidden by compute
    double dram_cycles = 0.0;
    double dram_bytes = 0.0;

    double dense_ops = 0.0;   ///< M*K*N scalar ops
    double bit_ops = 0.0;     ///< scalar adds under bit sparsity
    double product_ops = 0.0; ///< scalar adds under ProSparsity

    double prefix_hits = 0.0;
    double exact_matches = 0.0;
    double partial_matches = 0.0;
    double rows_processed = 0.0;
};

/** Layer-level PPU simulator. */
class Ppu
{
  public:
    struct Options
    {
        SparsityMode sparsity = SparsityMode::kProductSparsity;
        DispatchMode dispatch = DispatchMode::kOverheadFree;
        /** Analyze at most this many tiles per GeMM (0 = no sampling). */
        std::size_t max_sampled_tiles = 96;

        /**
         * Intra-PPU parallelism (Sec. VIII-A): how many independent
         * forest nodes the Dispatcher issues per cycle. Nodes in the
         * same tree level have no dependency; extra issue slots let
         * exact-match copies (which bypass the weight port) proceed
         * alongside accumulating rows.
         */
        std::size_t issue_width = 1;
    };

    explicit Ppu(ProsperityConfig config = {})
        : config_(config), options_(Options{})
    {
    }

    Ppu(ProsperityConfig config, Options options)
        : config_(config), options_(options)
    {
    }

    const ProsperityConfig& config() const { return config_; }
    const Options& options() const { return options_; }

    /**
     * Run one spiking GeMM. `spikes` must be shape.m x shape.k; `energy`
     * may be null when only cycles/ops are needed.
     */
    PpuLayerResult runGemm(const GemmShape& shape, const BitMatrix& spikes,
                           EnergyModel* energy) const;

  private:
    ProsperityConfig config_;
    Options options_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_PPU_H
