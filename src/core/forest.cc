#include "forest.h"

#include <algorithm>

#include "sim/logging.h"

namespace prosperity {

ProsparsityForest::ProsparsityForest(const SparsityTable& table)
    : children_(table.size())
{
    const std::size_t m = table.size();
    for (std::size_t i = 0; i < m; ++i) {
        if (table[i].hasPrefix()) {
            const auto p = static_cast<std::size_t>(table[i].prefix);
            PROSPERITY_ASSERT(p < m, "prefix index out of range");
            children_[p].push_back(i);
        } else {
            roots_.push_back(i);
        }
    }

    // Depth + cycle check via BFS from the roots.
    std::vector<std::size_t> level(m, 0);
    std::vector<std::size_t> queue = roots_;
    for (auto r : queue)
        level[r] = 1;
    std::size_t visited = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::size_t node = queue[head];
        ++visited;
        depth_ = std::max(depth_, level[node]);
        for (auto child : children_[node]) {
            level[child] = level[node] + 1;
            queue.push_back(child);
        }
    }
    acyclic_ = visited == m;
}

const std::vector<std::size_t>&
ProsparsityForest::children(std::size_t row) const
{
    PROSPERITY_ASSERT(row < children_.size(), "row out of range");
    return children_[row];
}

std::vector<std::size_t>
ProsparsityForest::bfsOrder() const
{
    std::vector<std::size_t> order = roots_;
    order.reserve(children_.size());
    for (std::size_t head = 0; head < order.size(); ++head)
        for (auto child : children_[order[head]])
            order.push_back(child);
    return order;
}

} // namespace prosperity
