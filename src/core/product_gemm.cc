#include "product_gemm.h"

#include <vector>

#include "sim/logging.h"

namespace prosperity {

ProductGemm::Result
ProductGemm::multiply(const BitMatrix& spikes,
                      const WeightMatrix& weights) const
{
    PROSPERITY_ASSERT(spikes.cols() == weights.rows(),
                      "GeMM inner dimensions disagree");
    const std::size_t M = spikes.rows();
    const std::size_t K = spikes.cols();
    const std::size_t N = weights.cols();

    Result result;
    result.output = OutputMatrix(M, N, 0);
    result.dense_ops = static_cast<double>(M) * static_cast<double>(K) *
                       static_cast<double>(N);

    const TilePipeline pipeline(SparsityMode::kProductSparsity, dispatch_);

    for (std::size_t r0 = 0; r0 < M; r0 += tile_.m) {
        for (std::size_t c0 = 0; c0 < K; c0 += tile_.k) {
            const BitMatrix tile = spikes.tile(r0, c0, tile_.m, tile_.k);
            const auto fe = pipeline.processFull(tile);
            const std::size_t rows = tile.rows();

            // Tile-local output rows: the Processor's output buffer.
            std::vector<std::vector<std::int32_t>> local(
                rows, std::vector<std::int32_t>(N, 0));

            for (const std::size_t row : fe.dispatch.order) {
                const PrefixEntry& entry = fe.table[row];
                std::vector<std::int32_t>& acc = local[row];
                if (entry.hasPrefix()) {
                    // Step 9: prefix result is the starting partial sum.
                    const auto p = static_cast<std::size_t>(entry.prefix);
                    acc = local[p];
                    ++result.prefix_hits;
                    if (entry.kind == PrefixKind::kExactMatch)
                        ++result.exact_matches;
                    else
                        ++result.partial_matches;
                }
                // Steps 10-11: accumulate the residual pattern's weights.
                for (std::size_t bit = entry.pattern.findFirst();
                     bit < tile.cols(); bit = entry.pattern.findNext(bit)) {
                    const std::int32_t* w = weights.rowPtr(c0 + bit);
                    for (std::size_t col = 0; col < N; ++col)
                        acc[col] += w[col];
                    result.product_ops += static_cast<double>(N);
                }
                result.bit_ops +=
                    static_cast<double>(entry.popcount) *
                    static_cast<double>(N);
            }

            // Step 12: accumulate the tile's rows onto the output.
            for (std::size_t row = 0; row < rows; ++row) {
                std::int32_t* out = result.output.rowPtr(r0 + row);
                for (std::size_t col = 0; col < N; ++col)
                    out[col] += local[row][col];
            }
        }
    }
    return result;
}

OutputMatrix
ProductGemm::referenceMultiply(const BitMatrix& spikes,
                               const WeightMatrix& weights)
{
    PROSPERITY_ASSERT(spikes.cols() == weights.rows(),
                      "GeMM inner dimensions disagree");
    const std::size_t M = spikes.rows();
    const std::size_t N = weights.cols();
    OutputMatrix out(M, N, 0);
    for (std::size_t r = 0; r < M; ++r) {
        const BitVector& row = spikes.row(r);
        std::int32_t* acc = out.rowPtr(r);
        for (std::size_t bit = row.findFirst(); bit < spikes.cols();
             bit = row.findNext(bit)) {
            const std::int32_t* w = weights.rowPtr(bit);
            for (std::size_t col = 0; col < N; ++col)
                acc[col] += w[col];
        }
    }
    return out;
}

} // namespace prosperity
