/**
 * @file
 * ProSparsity Dispatcher (Sec. V-D).
 *
 * Derives the execution order of a tile's rows. The paper's key
 * observation: a *stable* sort by number-of-ones already places every
 * prefix before its suffixes — partial-match prefixes have strictly
 * fewer ones, and exact-match prefixes have equal ones but a smaller
 * index, which stability preserves. The hardware realizes this with a
 * parallel bitonic sorter that runs concurrently with detection, making
 * order generation overhead-free.
 *
 * The high-overhead alternative the ablation study compares against
 * (Fig. 9) traverses the forest breadth-first, which costs O(m * d)
 * cycles because the O(m) table stores no suffix lists.
 */

#ifndef PROSPERITY_CORE_DISPATCHER_H
#define PROSPERITY_CORE_DISPATCHER_H

#include <cstddef>
#include <vector>

#include "core/pruner.h"

namespace prosperity {

/** Execution-order generation strategy. */
enum class DispatchMode {
    kOverheadFree,  ///< stable sort by NO (the paper's design)
    kTreeTraversal, ///< BFS over the forest (ablation baseline)
};

/** Execution order plus its cost model. */
struct DispatchResult
{
    /** Row indices in issue order (temporal information of Fig. 3 (d)). */
    std::vector<std::size_t> order;

    /**
     * Cycles of order generation that cannot be hidden behind the
     * detection pipeline. Zero for kOverheadFree (the bitonic sorter's
     * O(log^2 m) depth runs concurrently); m * depth for traversal.
     */
    std::size_t exposed_cycles = 0;

    /** Compare-exchange operations issued by the sorter (energy). */
    double sorter_compares = 0.0;

    /** Sparsity-table entry accesses (energy). */
    double table_accesses = 0.0;
};

/** Execution-order generator. */
class Dispatcher
{
  public:
    explicit Dispatcher(DispatchMode mode = DispatchMode::kOverheadFree)
        : mode_(mode)
    {
    }

    DispatchMode mode() const { return mode_; }

    /** Generate the issue order for one tile's sparsity table. */
    DispatchResult dispatch(const SparsityTable& table) const;

  private:
    DispatchMode mode_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_DISPATCHER_H
