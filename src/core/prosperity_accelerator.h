/**
 * @file
 * Prosperity — the full accelerator model behind the paper's headline
 * numbers. Wraps the PPU layer model in the common Accelerator
 * interface, wires in the area model, and exposes the ablation knobs
 * (sparsity mode, dispatch mode) used by Fig. 9.
 */

#ifndef PROSPERITY_CORE_PROSPERITY_ACCELERATOR_H
#define PROSPERITY_CORE_PROSPERITY_ACCELERATOR_H

#include <string>

#include "arch/accelerator.h"
#include "arch/area_model.h"
#include "core/ppu.h"

namespace prosperity {

/** The Prosperity accelerator (Table III configuration by default). */
class ProsperityAccelerator : public Accelerator
{
  public:
    explicit ProsperityAccelerator(ProsperityConfig config = {});
    ProsperityAccelerator(ProsperityConfig config, Ppu::Options options);

    std::string name() const override;
    std::size_t numPes() const override { return config_.num_pes; }
    double areaMm2() const override;
    Tech tech() const override { return config_.tech; }

    /** Last layer's detailed result (inspection/testing). */
    const PpuLayerResult& lastResult() const { return last_; }

    const ProsperityConfig& config() const { return config_; }
    const Ppu::Options& options() const { return ppu_.options(); }

  protected:
    double simulateSpikingGemm(const GemmShape& shape,
                               const BitMatrix& spikes,
                               EnergyModel& energy) override;

  private:

    ProsperityConfig config_;
    Ppu ppu_;
    PpuLayerResult last_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_PROSPERITY_ACCELERATOR_H
