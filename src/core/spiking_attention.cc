#include "spiking_attention.h"

#include "sim/logging.h"

namespace prosperity {

namespace {

/** Extract time step `t`'s L-row block of a t-major (T*L) x w matrix. */
BitMatrix
timeStepBlock(const BitMatrix& m, std::size_t t, std::size_t rows_per_step)
{
    return m.tile(t * rows_per_step, 0, rows_per_step, m.cols());
}

/** Binary matrix transposed into an integer weight matrix. */
WeightMatrix
transposeToWeights(const BitMatrix& m)
{
    const BitMatrix t = m.transpose();
    WeightMatrix out(t.rows(), t.cols(), 0);
    for (std::size_t r = 0; r < t.rows(); ++r) {
        const BitVector& row = t.row(r);
        for (std::size_t c = row.findFirst(); c < t.cols();
             c = row.findNext(c))
            out.at(r, c) = 1;
    }
    return out;
}

} // namespace

SpikingSelfAttention::Result
SpikingSelfAttention::evaluate(const BitMatrix& q, const BitMatrix& k,
                               const BitMatrix& v,
                               std::size_t time_steps) const
{
    PROSPERITY_ASSERT(time_steps > 0, "attention needs >= 1 time step");
    PROSPERITY_ASSERT(q.rows() == k.rows() && q.rows() == v.rows(),
                      "Q/K/V row counts disagree");
    PROSPERITY_ASSERT(q.cols() == k.cols(),
                      "Q/K head dimensions disagree");
    PROSPERITY_ASSERT(q.rows() % time_steps == 0,
                      "rows must be divisible by time steps");
    const std::size_t L = q.rows() / time_steps;
    const std::size_t d = v.cols();

    Result result;
    result.scores = OutputMatrix(q.rows(), L, 0);
    result.output = OutputMatrix(q.rows(), d, 0);

    for (std::size_t t = 0; t < time_steps; ++t) {
        const BitMatrix q_t = timeStepBlock(q, t, L);
        const BitMatrix k_t = timeStepBlock(k, t, L);
        const BitMatrix v_t = timeStepBlock(v, t, L);

        // S_t = Q_t K_t^T through the ProSparsity pipeline.
        const WeightMatrix k_weights = transposeToWeights(k_t);
        const ProductGemm::Result qk = gemm_.multiply(q_t, k_weights);
        result.qk_dense_ops += qk.dense_ops;
        result.qk_product_ops += qk.product_ops;
        for (std::size_t r = 0; r < L; ++r)
            for (std::size_t c = 0; c < L; ++c)
                result.scores.at(t * L + r, c) = qk.output.at(r, c);

        // O_t = S_t V_t: integer scores against binary V — each set bit
        // V_t[l, j] accumulates score column l into output column j.
        result.sv_dense_ops += static_cast<double>(L) *
                               static_cast<double>(L) *
                               static_cast<double>(d);
        for (std::size_t l = 0; l < L; ++l) {
            const BitVector& v_row = v_t.row(l);
            for (std::size_t j = v_row.findFirst(); j < d;
                 j = v_row.findNext(j)) {
                for (std::size_t r = 0; r < L; ++r)
                    result.output.at(t * L + r, j) +=
                        result.scores.at(t * L + r, l);
                result.sv_bit_ops += static_cast<double>(L);
            }
        }
    }
    return result;
}

SpikingSelfAttention::Result
SpikingSelfAttention::reference(const BitMatrix& q, const BitMatrix& k,
                                const BitMatrix& v,
                                std::size_t time_steps)
{
    PROSPERITY_ASSERT(q.rows() % time_steps == 0,
                      "rows must be divisible by time steps");
    const std::size_t L = q.rows() / time_steps;
    const std::size_t d = v.cols();

    Result result;
    result.scores = OutputMatrix(q.rows(), L, 0);
    result.output = OutputMatrix(q.rows(), d, 0);

    for (std::size_t t = 0; t < time_steps; ++t) {
        for (std::size_t r = 0; r < L; ++r) {
            for (std::size_t c = 0; c < L; ++c) {
                const std::size_t qr = t * L + r;
                const std::size_t kr = t * L + c;
                result.scores.at(qr, c) = static_cast<std::int32_t>(
                    q.row(qr).andPopcount(k.row(kr)));
            }
        }
        for (std::size_t r = 0; r < L; ++r)
            for (std::size_t j = 0; j < d; ++j) {
                std::int32_t acc = 0;
                for (std::size_t l = 0; l < L; ++l)
                    if (v.test(t * L + l, j))
                        acc += result.scores.at(t * L + r, l);
                result.output.at(t * L + r, j) = acc;
            }
    }
    return result;
}

} // namespace prosperity
