/**
 * @file
 * ProSparsity Pruner (Sec. V-C).
 *
 * Reduces each row's subset candidates to at most one Prefix according
 * to the paper's pruning rules:
 *
 *  1. filter out partial-ordering violations: an exact-match peer with a
 *     *larger* index may not serve as prefix (the proper-subset filter
 *     of Fig. 5 (b), step 5);
 *  2. argmax: keep the candidate with the largest spike set (most ones);
 *  3. tie-break toward the largest row index.
 *
 * The XOR unit then forms the residual ProSparsity pattern
 * (suffix row XOR prefix row == S_suffix - S_prefix, since the prefix
 * is a subset).
 */

#ifndef PROSPERITY_CORE_PRUNER_H
#define PROSPERITY_CORE_PRUNER_H

#include <cstdint>
#include <vector>

#include "bitmatrix/bit_matrix.h"
#include "core/detector.h"

namespace prosperity {

/** How a row relates to its selected prefix. */
enum class PrefixKind : std::uint8_t {
    kNone, ///< no usable prefix — the row is computed from scratch
    kPartialMatch,
    kExactMatch,
};

/** One product-sparsity-table entry (Fig. 3 (d) spatial information). */
struct PrefixEntry
{
    static constexpr std::int32_t kNoPrefix = -1;

    std::int32_t prefix = kNoPrefix; ///< prefix row index within the tile
    PrefixKind kind = PrefixKind::kNone;
    BitVector pattern;               ///< residual bits to accumulate
    std::size_t popcount = 0;        ///< NO of the row itself

    bool hasPrefix() const { return prefix != kNoPrefix; }
};

/** The pruned spatial information of one tile. */
using SparsityTable = std::vector<PrefixEntry>;

/** Prefix selection + pattern generation. */
class Pruner
{
  public:
    /**
     * Apply the pruning rules to a tile's detection result.
     *
     * @param tile The spike tile (for the XOR sparsify step).
     * @param detection Subset masks + popcounts from the Detector.
     */
    SparsityTable prune(const BitMatrix& tile,
                        const DetectionResult& detection) const;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_PRUNER_H
