/**
 * @file
 * ProSparsity Detector (Sec. V-B).
 *
 * Functional model of the TCAM-based spatial detection and the popcount
 * temporal detection. For each query row the TCAM masks the row's 1-bits
 * as don't-care and returns, in one cycle, the set of entries matching
 * the masked pattern — exactly the rows whose spike set is a subset of
 * the query row. Popcount units produce each row's number of ones (NO),
 * the preliminary temporal information.
 */

#ifndef PROSPERITY_CORE_DETECTOR_H
#define PROSPERITY_CORE_DETECTOR_H

#include <cstdint>
#include <vector>

#include "bitmatrix/bit_matrix.h"

namespace prosperity {

/** Output of detecting one tile. */
struct DetectionResult
{
    /**
     * subset_mask[i] has bit j set iff row j's spike set is a subset of
     * row i's spike set and j != i (the TCAM's Subset Index vector for
     * query row i).
     */
    std::vector<BitVector> subset_mask;

    /** popcounts[i] = number of ones (NO) of row i. */
    std::vector<std::size_t> popcounts;

    std::size_t rows() const { return popcounts.size(); }
};

/** TCAM + popcount detector. */
class Detector
{
  public:
    /**
     * Detect subset and popcount information for every row of `tile`.
     * Rows beyond the TCAM depth are rejected by the caller (tiles are
     * always cropped to at most the configured m).
     *
     * Word-parallel implementation: candidate rows are counting-sorted
     * by popcount so each query row i only scans candidates j with
     * NO(j) <= NO(i) (a subset can never have more ones than its
     * superset), and each surviving candidate is prefiltered by a
     * one-word occupancy signature (BitVector::signature) before the
     * full early-exit word comparison runs. The result is bitwise
     * identical to detectNaive() — the golden tests assert this — but
     * the expensive comparisons collapse to roughly the true matches.
     */
    DetectionResult detect(const BitMatrix& tile) const;

    /**
     * Retained O(m^2) reference implementation: the all-pairs TCAM
     * sweep the optimized detect() is validated and benchmarked
     * against (tests/test_detector.cc, bench/bench_hotpath.cc).
     */
    DetectionResult detectNaive(const BitMatrix& tile) const;

    /**
     * Cycles for the ProSparsity *processing phase* of a tile with
     * `rows` rows: the Step 2-6 pipeline issues one row per cycle
     * through five stages => rows + 4 (Sec. VI-A). Preloading and the
     * bitonic sort run concurrently and never dominate.
     */
    static std::size_t
    phaseCycles(std::size_t rows)
    {
        return rows == 0 ? 0 : rows + 4;
    }

    /** TCAM cell compares performed: one broadside search per row. */
    static double
    tcamBitOps(std::size_t rows, std::size_t cols)
    {
        return static_cast<double>(rows) * static_cast<double>(rows) *
               static_cast<double>(cols);
    }
};

} // namespace prosperity

#endif // PROSPERITY_CORE_DETECTOR_H
