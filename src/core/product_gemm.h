/**
 * @file
 * Functional ProSparsity spiking GeMM.
 *
 * Executes a spiking GeMM exactly the way the Prosperity Processor does
 * (Sec. V-E): tile by tile, rows issued in the Dispatcher's order, each
 * row starting from its prefix's output row and accumulating only the
 * weight rows selected by its residual pattern. Because ProSparsity is
 * lossless, the result is bit-identical to the dense reference — the
 * property tests in tests/ verify this on every configuration.
 */

#ifndef PROSPERITY_CORE_PRODUCT_GEMM_H
#define PROSPERITY_CORE_PRODUCT_GEMM_H

#include "bitmatrix/bit_matrix.h"
#include "bitmatrix/dense_matrix.h"
#include "core/tile_pipeline.h"

namespace prosperity {

/** Functional executor for spiking GeMM under ProSparsity. */
class ProductGemm
{
  public:
    explicit ProductGemm(TileConfig tile = {},
                         DispatchMode dispatch = DispatchMode::kOverheadFree)
        : tile_(tile), dispatch_(dispatch)
    {
    }

    /** Result of one multiplication with its operation accounting. */
    struct Result
    {
        OutputMatrix output;       ///< M x N accumulated currents
        double dense_ops = 0.0;    ///< M*K*N scalar MACs of the dense op
        double bit_ops = 0.0;      ///< scalar adds under bit sparsity
        double product_ops = 0.0;  ///< scalar adds under ProSparsity
        std::size_t prefix_hits = 0;
        std::size_t exact_matches = 0;
        std::size_t partial_matches = 0;
    };

    /**
     * Multiply an M x K spike matrix by a K x N weight matrix through
     * the ProSparsity pipeline.
     */
    Result multiply(const BitMatrix& spikes,
                    const WeightMatrix& weights) const;

    /** Dense reference: plain row-by-row accumulation. */
    static OutputMatrix referenceMultiply(const BitMatrix& spikes,
                                          const WeightMatrix& weights);

    const TileConfig& tile() const { return tile_; }

  private:
    TileConfig tile_;
    DispatchMode dispatch_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_PRODUCT_GEMM_H
