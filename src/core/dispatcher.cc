#include "dispatcher.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/forest.h"
#include "sim/logging.h"

namespace prosperity {

namespace {

/** Compare-exchange count of an m-input bitonic sorting network. */
double
bitonicCompares(std::size_t m)
{
    if (m <= 1)
        return 0.0;
    const double log_m = std::ceil(std::log2(static_cast<double>(m)));
    return static_cast<double>(m) / 2.0 * log_m * (log_m + 1.0) / 2.0;
}

} // namespace

DispatchResult
Dispatcher::dispatch(const SparsityTable& table) const
{
    const std::size_t m = table.size();
    DispatchResult result;
    result.table_accesses = 2.0 * static_cast<double>(m); // write + read

    switch (mode_) {
      case DispatchMode::kOverheadFree: {
        result.order.resize(m);
        std::iota(result.order.begin(), result.order.end(), 0);
        std::stable_sort(result.order.begin(), result.order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return table[a].popcount < table[b].popcount;
                         });
        result.exposed_cycles = 0; // hidden behind the detect pipeline
        result.sorter_compares = bitonicCompares(m);
        break;
      }
      case DispatchMode::kTreeTraversal: {
        const ProsparsityForest forest(table);
        result.order = forest.bfsOrder();
        // Without suffix pointers, scheduling each row requires walking
        // its prefix chain leaf-to-root through the table (Sec. V-D's
        // O(m * d) search-time issue): one table lookup per chain hop.
        std::size_t walk = 0;
        for (std::size_t i = 0; i < m; ++i) {
            std::size_t hops = 1;
            std::int32_t node = table[i].prefix;
            while (node != PrefixEntry::kNoPrefix) {
                ++hops;
                node = table[static_cast<std::size_t>(node)].prefix;
            }
            walk += hops;
        }
        // The table is banked two ways, so two walks proceed in
        // parallel per cycle.
        result.exposed_cycles = (walk + 1) / 2;
        result.table_accesses += static_cast<double>(walk);
        break;
      }
    }
    PROSPERITY_ASSERT(result.order.size() == m,
                      "dispatch order must cover every row");
    return result;
}

} // namespace prosperity
