/**
 * @file
 * ProSparsity Forest (Sec. III-D).
 *
 * After pruning, every row has at most one prefix, so the prefix
 * pointers form a directed forest whose topological order is the legal
 * execution order. The Dispatcher stores only the O(m) prefix pointers;
 * this helper materializes the suffix (children) lists when a traversal
 * or a structural check needs them.
 */

#ifndef PROSPERITY_CORE_FOREST_H
#define PROSPERITY_CORE_FOREST_H

#include <cstddef>
#include <vector>

#include "core/pruner.h"

namespace prosperity {

/** Materialized forest view over a sparsity table. */
class ProsparsityForest
{
  public:
    explicit ProsparsityForest(const SparsityTable& table);

    std::size_t size() const { return children_.size(); }

    /** Rows with no prefix (tree roots), ascending. */
    const std::vector<std::size_t>& roots() const { return roots_; }

    /** Suffix rows of `row` (rows whose prefix is `row`), ascending. */
    const std::vector<std::size_t>& children(std::size_t row) const;

    /** Depth of the deepest tree (a single node has depth 1). */
    std::size_t depth() const { return depth_; }

    /** Number of trees (== roots().size()). */
    std::size_t treeCount() const { return roots_.size(); }

    /**
     * Whether the prefix pointers are acyclic (always true for tables
     * produced by the Pruner; exposed for property tests).
     */
    bool isAcyclic() const { return acyclic_; }

    /** Breadth-first topological order from the roots. */
    std::vector<std::size_t> bfsOrder() const;

  private:
    std::vector<std::vector<std::size_t>> children_;
    std::vector<std::size_t> roots_;
    std::size_t depth_ = 0;
    bool acyclic_ = true;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_FOREST_H
