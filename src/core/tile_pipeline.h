/**
 * @file
 * Per-tile PPU processing: Detector -> Pruner -> Dispatcher -> cost.
 *
 * Combines the stage models into the per-tile schedule the pipeline
 * model (ppu.h) consumes, and counts the architectural activity the
 * energy model charges. Supports the ablation configurations of Fig. 9:
 * bit-sparsity-only processing (no detection, no reuse) and product
 * sparsity with either dispatch mode.
 */

#ifndef PROSPERITY_CORE_TILE_PIPELINE_H
#define PROSPERITY_CORE_TILE_PIPELINE_H

#include <cstddef>

#include "bitmatrix/bit_matrix.h"
#include "core/dispatcher.h"
#include "core/pruner.h"

namespace prosperity {

/** Which sparsity the Processor exploits. */
enum class SparsityMode {
    kBitSparsity,     ///< skip zeros only (rows processed as-is)
    kProductSparsity, ///< prefix reuse + residual patterns (the paper)
};

/** Activity and timing of one spike tile through the PPU. */
struct TileStats
{
    std::size_t rows = 0;
    std::size_t cols = 0;

    /** Cycles of the ProSparsity processing phase (0 in bit mode). */
    std::size_t prosparsity_cycles = 0;

    /**
     * Cycles of the computation phase for ONE n-pass: pipeline fill +
     * sum over issued rows of max(1, popcount(pattern)).
     */
    std::size_t compute_cycles = 0;

    /** Residual accumulations actually issued (row-activations). */
    double accum_row_ops = 0.0;

    /** Rows whose compute cost is the 1-cycle issue floor (EM copies):
     *  the work intra-PPU issue parallelism can compress. */
    double floor_rows = 0.0;

    /** Set bits of the raw tile (bit-sparsity accumulations). */
    double bit_row_ops = 0.0;

    /** Rows that reused a prefix (EM + PM). */
    std::size_t prefix_hits = 0;
    std::size_t exact_matches = 0;
    std::size_t partial_matches = 0;

    // Energy-relevant activity.
    double tcam_bit_ops = 0.0;
    double popcount_ops = 0.0;
    double pruner_ops = 0.0;
    double sorter_compares = 0.0;
    double table_accesses = 0.0;
    double prefix_loads = 0.0; ///< output-buffer row reads for prefixes
};

/** Tile-level PPU front end. */
class TilePipeline
{
  public:
    /**
     * Fraction of compute cycles doing useful accumulation work. The
     * row-wise Processor loses slots to structural hazards — prefix
     * loads from the output buffer, write-back port conflicts, and
     * weight-bank conflicts — captured as a single issue-efficiency
     * derating applied to both sparsity modes.
     */
    static constexpr double kIssueEfficiency = 0.65;

    TilePipeline(SparsityMode sparsity, DispatchMode dispatch,
                 std::size_t issue_width = 1)
        : sparsity_(sparsity), dispatcher_(dispatch),
          issue_width_(issue_width == 0 ? 1 : issue_width)
    {
    }

    SparsityMode sparsityMode() const { return sparsity_; }

    /** Process one cropped tile and return its schedule/activity. */
    TileStats process(const BitMatrix& tile) const;

    /**
     * Full front-end products for the functional executor: sparsity
     * table plus issue order. Only meaningful in product-sparsity mode.
     */
    struct FrontEnd
    {
        SparsityTable table;
        DispatchResult dispatch;
    };
    FrontEnd processFull(const BitMatrix& tile) const;

  private:
    SparsityMode sparsity_;
    Dispatcher dispatcher_;
    std::size_t issue_width_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_TILE_PIPELINE_H
