#include "prosperity_accelerator.h"

#include <stdexcept>

#include "arch/registry.h"

namespace prosperity {

ProsperityAccelerator::ProsperityAccelerator(ProsperityConfig config)
    : ProsperityAccelerator(config, Ppu::Options{})
{
}

ProsperityAccelerator::ProsperityAccelerator(ProsperityConfig config,
                                             Ppu::Options options)
    : config_(config), ppu_(config, options)
{
}

std::string
ProsperityAccelerator::name() const
{
    if (ppu_.options().sparsity == SparsityMode::kBitSparsity)
        return "Prosperity(bit-only)";
    if (ppu_.options().dispatch == DispatchMode::kTreeTraversal)
        return "Prosperity(traversal)";
    return "Prosperity";
}

double
ProsperityAccelerator::areaMm2() const
{
    return AreaModel(config_).area().total();
}

double
ProsperityAccelerator::simulateSpikingGemm(const GemmShape& shape,
                                           const BitMatrix& spikes,
                                           EnergyModel& energy)
{
    last_ = ppu_.runGemm(shape, spikes, &energy);
    noteDramBytes(last_.dram_bytes);
    return last_.cycles;
}

void
registerProsperityAccelerator(AcceleratorRegistry& registry)
{
    registry.add(
        "prosperity",
        "the paper's ProSparsity accelerator (Table III config); "
        "params: sparsity=product|bit, dispatch=overhead-free|traversal, "
        "issue_width, num_ppus, max_sampled_tiles, tile_m, tile_k",
        [](const AcceleratorParams& params) {
            params.expectOnly({"sparsity", "dispatch", "issue_width",
                               "num_ppus", "max_sampled_tiles", "tile_m",
                               "tile_k"});
            ProsperityConfig config;
            config.num_ppus = params.getSize("num_ppus", config.num_ppus);
            config.tile.m = params.getSize("tile_m", config.tile.m);
            config.tile.k = params.getSize("tile_k", config.tile.k);
            if (config.tile.m == 0 || config.tile.k == 0)
                throw std::invalid_argument(
                    "prosperity: tile_m and tile_k must be at least 1");

            Ppu::Options options;
            const std::string sparsity =
                params.getString("sparsity", "product");
            if (sparsity == "bit")
                options.sparsity = SparsityMode::kBitSparsity;
            else if (sparsity != "product")
                throw std::invalid_argument(
                    "prosperity: unknown sparsity mode \"" + sparsity +
                    "\" (want product|bit)");
            const std::string dispatch =
                params.getString("dispatch", "overhead-free");
            if (dispatch == "traversal")
                options.dispatch = DispatchMode::kTreeTraversal;
            else if (dispatch != "overhead-free")
                throw std::invalid_argument(
                    "prosperity: unknown dispatch mode \"" + dispatch +
                    "\" (want overhead-free|traversal)");
            options.issue_width =
                params.getSize("issue_width", options.issue_width);
            options.max_sampled_tiles = params.getSize(
                "max_sampled_tiles", options.max_sampled_tiles);

            return std::make_unique<ProsperityAccelerator>(config,
                                                           options);
        });
}

} // namespace prosperity
