#include "prosperity_accelerator.h"

namespace prosperity {

ProsperityAccelerator::ProsperityAccelerator(ProsperityConfig config)
    : ProsperityAccelerator(config, Ppu::Options{})
{
}

ProsperityAccelerator::ProsperityAccelerator(ProsperityConfig config,
                                             Ppu::Options options)
    : config_(config), ppu_(config, options)
{
}

std::string
ProsperityAccelerator::name() const
{
    if (ppu_.options().sparsity == SparsityMode::kBitSparsity)
        return "Prosperity(bit-only)";
    if (ppu_.options().dispatch == DispatchMode::kTreeTraversal)
        return "Prosperity(traversal)";
    return "Prosperity";
}

double
ProsperityAccelerator::areaMm2() const
{
    return AreaModel(config_).area().total();
}

double
ProsperityAccelerator::runSpikingGemm(const GemmShape& shape,
                                      const BitMatrix& spikes,
                                      EnergyModel& energy)
{
    last_ = ppu_.runGemm(shape, spikes, &energy);
    return last_.cycles;
}

} // namespace prosperity
