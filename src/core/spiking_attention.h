/**
 * @file
 * Functional spiking self-attention (Sec. IV, "Support for
 * Transformers").
 *
 * Spikformer-style spiking self attention (SSA) is softmax-free: with
 * binary Q, K, V spike matrices, the block computes S = Q K^T followed
 * by O = S V, both of which the PPU executes as spiking-GeMM-like
 * operations. Q K^T runs through the full ProSparsity pipeline (Q is a
 * binary left operand); S V exploits bit sparsity in V (each set bit
 * of V column-selects a score column to accumulate).
 *
 * This module provides the bit-exact functional path used by tests and
 * examples; the timing/energy of attention layers flows through the
 * same Ppu model as every other spiking GeMM.
 */

#ifndef PROSPERITY_CORE_SPIKING_ATTENTION_H
#define PROSPERITY_CORE_SPIKING_ATTENTION_H

#include "bitmatrix/bit_matrix.h"
#include "bitmatrix/dense_matrix.h"
#include "core/product_gemm.h"

namespace prosperity {

/** Softmax-free spiking self attention, evaluated per time step. */
class SpikingSelfAttention
{
  public:
    explicit SpikingSelfAttention(TileConfig tile = {}) : gemm_(tile) {}

    /** Result of one attention evaluation. */
    struct Result
    {
        /** Integer score matrices, one (L x L) block per time step,
         *  stacked into (T*L) x L. */
        OutputMatrix scores;
        /** Output currents, (T*L) x d. */
        OutputMatrix output;

        double qk_dense_ops = 0.0;
        double qk_product_ops = 0.0;
        double sv_dense_ops = 0.0;
        double sv_bit_ops = 0.0; ///< adds surviving V's bit sparsity
    };

    /**
     * Evaluate SSA on t-major (T*L) x d binary Q, K, V.
     *
     * @param time_steps T; all three operands must have T*L rows.
     */
    Result evaluate(const BitMatrix& q, const BitMatrix& k,
                    const BitMatrix& v, std::size_t time_steps) const;

    /** Dense reference for the full block (for tests). */
    static Result reference(const BitMatrix& q, const BitMatrix& k,
                            const BitMatrix& v, std::size_t time_steps);

  private:
    ProductGemm gemm_;
};

} // namespace prosperity

#endif // PROSPERITY_CORE_SPIKING_ATTENTION_H
