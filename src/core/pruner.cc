#include "pruner.h"

#include "sim/logging.h"

namespace prosperity {

SparsityTable
Pruner::prune(const BitMatrix& tile, const DetectionResult& detection) const
{
    const std::size_t m = tile.rows();
    PROSPERITY_ASSERT(detection.rows() == m,
                      "detection result does not match tile");
    SparsityTable table(m);

    for (std::size_t i = 0; i < m; ++i) {
        PrefixEntry& entry = table[i];
        entry.popcount = detection.popcounts[i];
        entry.pattern = tile.row(i);

        // Zero-spike rows have nothing to compute and nothing to reuse.
        // One-spike rows cannot use a partial match (a proper subset
        // would be empty) but do benefit from exact-match result reuse,
        // which the TCAM finds like any other subset.
        if (entry.popcount == 0)
            continue;

        const BitVector& candidates = detection.subset_mask[i];
        std::int32_t best = PrefixEntry::kNoPrefix;
        std::size_t best_popcount = 0;
        for (std::size_t j = candidates.findFirst(); j < m;
             j = candidates.findNext(j)) {
            const std::size_t no_j = detection.popcounts[j];
            // Proper-subset filter: an exact-match peer with a larger
            // index violates the partial ordering (its result is not
            // computed yet when this row issues).
            if (no_j == entry.popcount && j > i)
                continue;
            // Argmax on NO; ties keep the largest index (pruning rule 2).
            if (best == PrefixEntry::kNoPrefix || no_j > best_popcount ||
                (no_j == best_popcount &&
                 static_cast<std::size_t>(best) < j)) {
                best = static_cast<std::int32_t>(j);
                best_popcount = no_j;
            }
        }

        if (best != PrefixEntry::kNoPrefix) {
            entry.prefix = best;
            entry.kind = best_popcount == entry.popcount
                             ? PrefixKind::kExactMatch
                             : PrefixKind::kPartialMatch;
            // Sparsify: prefix is a subset, so XOR == set difference.
            entry.pattern = tile.row(i) ^
                            tile.row(static_cast<std::size_t>(best));
        }
    }
    return table;
}

} // namespace prosperity
