#include "ppu.h"

#include <algorithm>
#include <vector>

#include "arch/sram.h"
#include "sim/logging.h"

namespace prosperity {

namespace {

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

PpuLayerResult
Ppu::runGemm(const GemmShape& shape, const BitMatrix& spikes,
             EnergyModel* energy) const
{
    PROSPERITY_ASSERT(spikes.rows() == shape.m && spikes.cols() == shape.k,
                      "spike matrix does not match GeMM shape");
    const TileConfig& tile = config_.tile;
    const std::size_t row_tiles = ceilDiv(shape.m, tile.m);
    const std::size_t col_tiles = ceilDiv(shape.k, tile.k);
    const std::size_t n_passes = ceilDiv(shape.n, tile.n);
    const double total_tiles =
        static_cast<double>(row_tiles) * static_cast<double>(col_tiles);

    // Choose the tiles to analyze (strided sampling for huge layers).
    std::vector<std::pair<std::size_t, std::size_t>> origins;
    origins.reserve(row_tiles * col_tiles);
    for (std::size_t r = 0; r < row_tiles; ++r)
        for (std::size_t c = 0; c < col_tiles; ++c)
            origins.emplace_back(r * tile.m, c * tile.k);

    double scale = 1.0;
    if (options_.max_sampled_tiles > 0 &&
        origins.size() > options_.max_sampled_tiles) {
        std::vector<std::pair<std::size_t, std::size_t>> sampled;
        sampled.reserve(options_.max_sampled_tiles);
        const double stride = static_cast<double>(origins.size()) /
                              static_cast<double>(options_.max_sampled_tiles);
        for (std::size_t i = 0; i < options_.max_sampled_tiles; ++i)
            sampled.push_back(
                origins[static_cast<std::size_t>(i * stride)]);
        scale = static_cast<double>(origins.size()) /
                static_cast<double>(sampled.size());
        origins = std::move(sampled);
    }

    const TilePipeline pipeline(options_.sparsity, options_.dispatch,
                                options_.issue_width);
    PpuLayerResult result;
    result.dense_ops = shape.denseOps();

    const double n_total = static_cast<double>(shape.n);
    double pipelined_cycles = 0.0;
    double first_phase = 0.0;
    bool first = true;

    for (const auto& [r0, c0] : origins) {
        const BitMatrix t = spikes.tile(r0, c0, tile.m, tile.k);
        const TileStats stats = pipeline.process(t);

        const double compute =
            static_cast<double>(stats.compute_cycles) *
            static_cast<double>(n_passes);
        const double phase =
            static_cast<double>(stats.prosparsity_cycles);
        if (first) {
            first_phase = phase;
            first = false;
        }
        // Inter-phase pipeline: a tile's ProSparsity phase hides behind
        // the previous tile's computation; whichever is longer paces
        // the machine.
        pipelined_cycles += std::max(compute, phase);
        result.compute_cycles += compute;
        result.prosparsity_cycles += phase;
        result.exposed_prosparsity_cycles +=
            std::max(0.0, phase - compute);

        result.bit_ops += stats.bit_row_ops * n_total;
        result.product_ops += stats.accum_row_ops * n_total;
        result.prefix_hits += static_cast<double>(stats.prefix_hits);
        result.exact_matches += static_cast<double>(stats.exact_matches);
        result.partial_matches +=
            static_cast<double>(stats.partial_matches);
        result.rows_processed += static_cast<double>(stats.rows);

        if (energy) {
            const auto& e = energy->params();
            energy->charge("detector", e.tcam_search_per_bit_pj,
                           stats.tcam_bit_ops * scale);
            energy->charge("detector", e.popcount_per_row_pj,
                           stats.popcount_ops * scale);
            energy->charge("pruner", e.pruner_per_row_pj,
                           stats.pruner_ops * scale);
            energy->charge("dispatcher", e.sorter_per_compare_pj,
                           stats.sorter_compares * scale);
            energy->charge("dispatcher", e.table_access_per_entry_pj,
                           stats.table_accesses * scale);
            energy->charge("processor", e.pe_add8_pj,
                           stats.accum_row_ops * n_total * scale);

            const SramBuffer wgt("weight", config_.weightBufferBytes(),
                                 tile.n);
            const SramBuffer out("output", config_.outputBufferBytes(),
                                 tile.n * config_.psum_bits / 8);
            const SramBuffer spk("spike", config_.spikeBufferBytes(),
                                 tile.k / 8);
            const double psum_bytes =
                static_cast<double>(config_.psum_bits) / 8.0;
            energy->charge("buffer", wgt.accessEnergyPerBytePj(),
                           stats.accum_row_ops * n_total * scale);
            energy->charge("buffer", out.accessEnergyPerBytePj(),
                           (static_cast<double>(stats.rows) +
                            stats.prefix_loads) *
                               n_total * psum_bytes * scale);
            energy->charge("buffer", spk.accessEnergyPerBytePj(),
                           2.0 * static_cast<double>(stats.rows) *
                               static_cast<double>(stats.cols) / 8.0 *
                               scale);
        }
    }

    // Inter-PPU parallelism: row-tiles are distributed across PPU
    // instances; each instance runs its own detect/prune/dispatch
    // pipeline, so the tile stream divides evenly (row-tile counts are
    // large compared to the PPU count for every evaluated model).
    const double ppus = static_cast<double>(
        std::max<std::size_t>(1, std::min(config_.num_ppus, row_tiles)));
    pipelined_cycles = pipelined_cycles * scale / ppus + first_phase;
    result.compute_cycles *= scale;
    result.prosparsity_cycles *= scale;
    result.exposed_prosparsity_cycles *= scale;
    result.bit_ops *= scale;
    result.product_ops *= scale;
    result.prefix_hits *= scale;
    result.exact_matches *= scale;
    result.partial_matches *= scale;
    result.rows_processed *= scale;

    // Off-chip traffic. Weights are the large operand, so the dataflow
    // keeps each weight tile resident and streams it exactly once; the
    // packed spike matrix (tiny by comparison) is re-streamed once per
    // n-pass when it exceeds the spike buffer; outputs leave as packed
    // spikes from the neuron array.
    const double weight_bytes = static_cast<double>(shape.k) *
                                static_cast<double>(shape.n);
    const double spike_bytes_once =
        static_cast<double>(shape.m) * static_cast<double>(shape.k) /
        8.0 / static_cast<double>(std::max<std::size_t>(1,
                                                        shape.input_reuse));
    const double spike_passes =
        spike_bytes_once > static_cast<double>(config_.spikeBufferBytes())
            ? static_cast<double>(n_passes)
            : 1.0;
    const double out_bytes = static_cast<double>(shape.m) *
                             static_cast<double>(shape.n) / 8.0;
    result.dram_bytes =
        spike_bytes_once * spike_passes + weight_bytes + out_bytes;
    result.dram_cycles = config_.dram.cyclesFor(result.dram_bytes,
                                                config_.tech);
    if (energy) {
        energy->charge("dram", energy->params().dram_per_byte_pj,
                       result.dram_bytes);
        energy->charge("other", energy->params().other_per_cycle_pj,
                       std::max(pipelined_cycles, result.dram_cycles));
    }

    // Double buffering overlaps memory with compute; the slower side
    // bounds the layer.
    result.cycles = std::max(pipelined_cycles, result.dram_cycles);
    PROSPERITY_ASSERT(total_tiles >= 1.0 || result.cycles == first_phase,
                      "tile accounting is inconsistent");
    return result;
}

} // namespace prosperity
