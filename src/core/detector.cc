#include "detector.h"

#include "sim/logging.h"

namespace prosperity {

DetectionResult
Detector::detect(const BitMatrix& tile) const
{
    const std::size_t m = tile.rows();
    DetectionResult result;
    result.subset_mask.assign(m, BitVector(m));
    result.popcounts.resize(m);

    for (std::size_t i = 0; i < m; ++i)
        result.popcounts[i] = tile.row(i).popcount();

    // TCAM search: for query row i, entry j matches iff S_j is a subset
    // of S_i. Empty rows are excluded here — an all-zero entry matches
    // every query but carries no reusable result, and the hardware's
    // valid bit masks it out of the match line.
    for (std::size_t i = 0; i < m; ++i) {
        const BitVector& query = tile.row(i);
        if (result.popcounts[i] == 0)
            continue;
        for (std::size_t j = 0; j < m; ++j) {
            if (j == i || result.popcounts[j] == 0)
                continue;
            if (result.popcounts[j] <= result.popcounts[i] &&
                tile.row(j).isSubsetOf(query)) {
                result.subset_mask[i].set(j);
            }
        }
    }
    return result;
}

} // namespace prosperity
