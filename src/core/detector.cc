#include "detector.h"

#include <algorithm>
#include <cstdint>

#include "bitmatrix/simd_dispatch.h"
#include "bitmatrix/word_kernels.h"
#include "sim/logging.h"

namespace prosperity {

DetectionResult
Detector::detect(const BitMatrix& tile) const
{
    const std::size_t m = tile.rows();
    DetectionResult result;
    result.subset_mask.assign(m, BitVector(m));
    result.popcounts.resize(m);
    if (m == 0)
        return result;

    // Per-row word spans, popcounts and one-word occupancy signatures.
    // All kernel calls below go through the dispatched SIMD table. Wide
    // rows are swept over their whole padded stride (zero pad, so no
    // scalar tails); rows narrower than a stride use the logical count
    // — the paper's 16-column tiles are one word per row and must not
    // pay for an 8-word sweep.
    const SimdOps& ops = simdOps();
    const std::size_t logical_words = tile.row(0).wordCount();
    const std::size_t nwords =
        logical_words >= BitVector::kRowStrideWords
            ? tile.row(0).strideWords()
            : logical_words;
    std::vector<const std::uint64_t*> row_words(m);
    std::vector<std::uint64_t> sig(m);
    std::size_t max_pc = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const BitVector& row = tile.row(i);
        row_words[i] = row.paddedWords().data();
        result.popcounts[i] = ops.popcountWords(row_words[i], nwords);
        sig[i] = row.signature();
        max_pc = std::max(max_pc, result.popcounts[i]);
    }
    if (max_pc == 0)
        return result; // all rows empty: no queries, no candidates

    // Counting-sort the non-empty rows by popcount (ascending, stable).
    // `bucket_end[p]` is one past the last sorted entry with popcount
    // <= p, so a query with NO(i) = p scans exactly order[0 ..
    // bucket_end[p]) — candidates with more ones can never be subsets.
    std::vector<std::size_t> bucket_end(max_pc + 1, 0);
    for (std::size_t i = 0; i < m; ++i)
        if (result.popcounts[i] > 0)
            ++bucket_end[result.popcounts[i]];
    for (std::size_t p = 1; p <= max_pc; ++p)
        bucket_end[p] += bucket_end[p - 1];
    std::vector<std::uint32_t> order(bucket_end[max_pc]);
    {
        std::vector<std::size_t> cursor(max_pc + 1, 0);
        for (std::size_t p = 1; p <= max_pc; ++p)
            cursor[p] = bucket_end[p - 1];
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t pc = result.popcounts[i];
            if (pc > 0)
                order[cursor[pc]++] = static_cast<std::uint32_t>(i);
        }
    }

    // Signatures gathered in sorted order: the per-query prefilter then
    // scans one contiguous array with the vectorized signatureScanWords
    // kernel (4 candidates per compare on AVX2, 8 on AVX-512) instead
    // of chasing order[] indirections word by word.
    std::vector<std::uint64_t> sig_sorted(order.size());
    for (std::size_t t = 0; t < order.size(); ++t)
        sig_sorted[t] = sig[order[t]];
    std::vector<std::uint32_t> survivors(order.size());

    // TCAM search per query row: vectorized signature prefilter over
    // the sorted candidates, then the fused early-exit word comparison
    // on the few survivors. For single-word rows (every k<=64 tile,
    // including the paper's 256x16 ones) the signature IS the row, so
    // the scan is exact and the confirmation loop is skipped entirely.
    // Empty rows neither query nor match (the hardware's valid bit
    // masks them out of the match line).
    const bool signature_is_exact = logical_words == 1;
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t pc_i = result.popcounts[i];
        if (pc_i == 0)
            continue;
        const std::uint64_t* words_i = row_words[i];
        BitVector& mask = result.subset_mask[i];
        const std::size_t end = bucket_end[pc_i];
        const std::size_t kept = ops.signatureScanWords(
            sig_sorted.data(), end, sig[i], survivors.data());
        if (signature_is_exact) {
            for (std::size_t s = 0; s < kept; ++s) {
                const std::size_t j = order[survivors[s]];
                if (j != i)
                    mask.set(j);
            }
            continue;
        }
        for (std::size_t s = 0; s < kept; ++s) {
            const std::size_t j = order[survivors[s]];
            if (j != i &&
                ops.isSubsetOfWords(row_words[j], words_i, nwords))
                mask.set(j);
        }
    }
    return result;
}

DetectionResult
Detector::detectNaive(const BitMatrix& tile) const
{
    const std::size_t m = tile.rows();
    DetectionResult result;
    result.subset_mask.assign(m, BitVector(m));
    result.popcounts.resize(m);

    for (std::size_t i = 0; i < m; ++i)
        result.popcounts[i] = tile.row(i).popcount();

    // TCAM search: for query row i, entry j matches iff S_j is a subset
    // of S_i. Empty rows are excluded here — an all-zero entry matches
    // every query but carries no reusable result, and the hardware's
    // valid bit masks it out of the match line.
    for (std::size_t i = 0; i < m; ++i) {
        const BitVector& query = tile.row(i);
        if (result.popcounts[i] == 0)
            continue;
        for (std::size_t j = 0; j < m; ++j) {
            if (j == i || result.popcounts[j] == 0)
                continue;
            if (result.popcounts[j] <= result.popcounts[i] &&
                tile.row(j).isSubsetOf(query)) {
                result.subset_mask[i].set(j);
            }
        }
    }
    return result;
}

} // namespace prosperity
