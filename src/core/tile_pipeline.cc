#include "tile_pipeline.h"

#include <cmath>

#include "core/detector.h"
#include "sim/logging.h"

namespace prosperity {

TilePipeline::FrontEnd
TilePipeline::processFull(const BitMatrix& tile) const
{
    Detector detector;
    Pruner pruner;
    FrontEnd fe;
    const DetectionResult detection = detector.detect(tile);
    fe.table = pruner.prune(tile, detection);
    fe.dispatch = dispatcher_.dispatch(fe.table);
    return fe;
}

TileStats
TilePipeline::process(const BitMatrix& tile) const
{
    TileStats stats;
    stats.rows = tile.rows();
    stats.cols = tile.cols();
    if (stats.rows == 0 || stats.cols == 0)
        return stats;

    const std::size_t fill = 4; // issue/decode/execute/writeback stages

    if (sparsity_ == SparsityMode::kBitSparsity) {
        // No detection: rows issue in natural order, every set bit is
        // one accumulation cycle, and all-zero rows are squeezed out by
        // the issue logic's valid bits.
        std::size_t work = 0;
        for (std::size_t r = 0; r < stats.rows; ++r) {
            const std::size_t pops = tile.row(r).popcount();
            stats.bit_row_ops += static_cast<double>(pops);
            work += pops;
        }
        stats.accum_row_ops = stats.bit_row_ops;
        stats.compute_cycles =
            fill + static_cast<std::size_t>(
                       std::ceil(static_cast<double>(work) /
                                 kIssueEfficiency));
        return stats;
    }

    const FrontEnd fe = processFull(tile);

    stats.prosparsity_cycles =
        Detector::phaseCycles(stats.rows) + fe.dispatch.exposed_cycles;
    stats.tcam_bit_ops = Detector::tcamBitOps(stats.rows, stats.cols);
    stats.popcount_ops = static_cast<double>(stats.rows);
    stats.pruner_ops = static_cast<double>(stats.rows);
    stats.sorter_compares = fe.dispatch.sorter_compares;
    stats.table_accesses = fe.dispatch.table_accesses;

    double adds = 0.0;
    for (std::size_t r = 0; r < stats.rows; ++r) {
        const PrefixEntry& entry = fe.table[r];
        stats.bit_row_ops += static_cast<double>(entry.popcount);
        const std::size_t pattern_pops = entry.pattern.popcount();
        stats.accum_row_ops += static_cast<double>(pattern_pops);
        // An exact match has an all-zero pattern but still occupies one
        // issue cycle to copy the prefix result (Sec. VII-F); all-zero
        // rows are squeezed out entirely. Copies go through the banked
        // psum path, so `issue_width` of them retire per cycle
        // (intra-PPU parallelism, Sec. VIII-A).
        if (entry.popcount > 0) {
            if (pattern_pops == 0)
                stats.floor_rows += 1.0;
            else
                adds += static_cast<double>(pattern_pops);
        }
        if (entry.hasPrefix()) {
            ++stats.prefix_hits;
            ++stats.prefix_loads;
            if (entry.kind == PrefixKind::kExactMatch)
                ++stats.exact_matches;
            else
                ++stats.partial_matches;
        }
    }
    const double work =
        adds + std::ceil(stats.floor_rows /
                         static_cast<double>(issue_width_));
    stats.compute_cycles =
        fill +
        static_cast<std::size_t>(std::ceil(work / kIssueEfficiency));
    return stats;
}

} // namespace prosperity
